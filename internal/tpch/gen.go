package tpch

import (
	"errors"
	"fmt"
	"math"

	"bufferdb/internal/btree"
	"bufferdb/internal/storage"
)

// ErrBadScaleFactor is the sentinel wrapped when Generate is given a scale
// factor that cannot produce a catalog: zero, negative, NaN or infinite.
// Test with errors.Is; the dynamic error carries the offending value.
var ErrBadScaleFactor = errors.New("bad scale factor")

// Config controls data generation.
type Config struct {
	// ScaleFactor is the TPC-H SF. The paper evaluates at SF 0.2; the test
	// suite uses much smaller factors and the benchmark harness defaults to
	// 0.05 so runs stay laptop-scale. Must be > 0.
	ScaleFactor float64
	// Seed makes generation deterministic; 0 selects a fixed default.
	Seed uint64
	// SkipIndexes suppresses index construction (tests that only scan).
	SkipIndexes bool
}

// Base cardinalities at SF 1, per the TPC-H specification.
const (
	baseSupplier = 10_000
	baseCustomer = 150_000
	basePart     = 200_000
	baseOrders   = 1_500_000
)

// Date range of o_orderdate, per the specification: [1992-01-01, 1998-08-02].
var (
	startDate = storage.DateFromYMD(1992, 1, 1).I
	endDate   = storage.DateFromYMD(1998, 8, 2).I
)

// CurrentDate is the TPC-H query horizon constant (used by validity checks
// and some query predicates).
var CurrentDate = storage.DateFromYMD(1995, 6, 17)

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"}
	typeSyl1   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2   = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3   = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	regions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations    = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
		"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
		"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
		"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	// nationRegion maps each nation (by position) to its region key.
	nationRegion = []int64{
		0, 1, 1, 1, 4,
		0, 3, 3, 2, 2,
		4, 4, 2, 4, 0,
		0, 0, 1, 2, 3,
		4, 2, 3, 3, 1,
	}
)

// Generate builds a memory-resident TPC-H database at the configured scale,
// complete with primary-key indexes on region, nation, supplier, customer,
// part and orders, plus a non-unique foreign-key index on
// lineitem(l_orderkey) — the access paths the paper's join plans use.
func Generate(cfg Config) (*storage.Catalog, error) {
	// NaN fails every comparison, so test for the valid range rather than
	// the invalid one: only a positive finite factor passes.
	if !(cfg.ScaleFactor > 0) || math.IsInf(cfg.ScaleFactor, 0) || math.IsNaN(cfg.ScaleFactor) {
		return nil, fmt.Errorf("tpch: %w: must be a positive finite number, got %v",
			ErrBadScaleFactor, cfg.ScaleFactor)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5d77a4c6b0f3219e
	}

	g := &generator{
		cfg:       cfg,
		cat:       storage.NewCatalog(),
		nSupplier: scaled(baseSupplier, cfg.ScaleFactor),
		nCustomer: scaled(baseCustomer, cfg.ScaleFactor),
		nPart:     scaled(basePart, cfg.ScaleFactor),
		nOrders:   scaled(baseOrders, cfg.ScaleFactor),
	}

	// Each table gets its own stream so that adding a column to one table
	// never perturbs another table's data.
	g.region(newRNG(seed ^ 0x01))
	g.nation(newRNG(seed ^ 0x02))
	g.supplier(newRNG(seed ^ 0x03))
	g.customer(newRNG(seed ^ 0x04))
	g.part(newRNG(seed ^ 0x05))
	g.partsupp(newRNG(seed ^ 0x06))
	if err := g.ordersAndLineitem(newRNG(seed ^ 0x07)); err != nil {
		return nil, err
	}
	if !cfg.SkipIndexes {
		if err := g.buildIndexes(); err != nil {
			return nil, err
		}
	}
	return g.cat, nil
}

// scaled returns max(1, round(base × sf)).
func scaled(base int, sf float64) int {
	n := int(float64(base)*sf + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

type generator struct {
	cfg       Config
	cat       *storage.Catalog
	nSupplier int
	nCustomer int
	nPart     int
	nOrders   int
}

func (g *generator) region(r *rng) {
	t := storage.NewTable("region", regionSchema())
	for i, name := range regions {
		t.MustAppend(storage.Row{
			storage.NewInt(int64(i)),
			storage.NewString(name),
			storage.NewString(r.words(3)),
		})
	}
	g.cat.MustAdd(t)
}

func (g *generator) nation(r *rng) {
	t := storage.NewTable("nation", nationSchema())
	for i, name := range nations {
		t.MustAppend(storage.Row{
			storage.NewInt(int64(i)),
			storage.NewString(name),
			storage.NewInt(nationRegion[i]),
			storage.NewString(r.words(3)),
		})
	}
	g.cat.MustAdd(t)
}

func (g *generator) supplier(r *rng) {
	t := storage.NewTable("supplier", supplierSchema())
	for i := 1; i <= g.nSupplier; i++ {
		t.MustAppend(storage.Row{
			storage.NewInt(int64(i)),
			storage.NewString(fmt.Sprintf("Supplier#%09d", i)),
			storage.NewString(r.words(2)),
			storage.NewInt(int64(r.intn(len(nations)))),
			storage.NewString(phone(r)),
			storage.NewFloat(r.money(-999.99, 9999.99)),
			storage.NewString(r.words(4)),
		})
	}
	g.cat.MustAdd(t)
}

func (g *generator) customer(r *rng) {
	t := storage.NewTable("customer", customerSchema())
	for i := 1; i <= g.nCustomer; i++ {
		t.MustAppend(storage.Row{
			storage.NewInt(int64(i)),
			storage.NewString(fmt.Sprintf("Customer#%09d", i)),
			storage.NewString(r.words(2)),
			storage.NewInt(int64(r.intn(len(nations)))),
			storage.NewString(phone(r)),
			storage.NewFloat(r.money(-999.99, 9999.99)),
			storage.NewString(r.pick(segments)),
			storage.NewString(r.words(4)),
		})
	}
	g.cat.MustAdd(t)
}

func (g *generator) part(r *rng) {
	t := storage.NewTable("part", partSchema())
	for i := 1; i <= g.nPart; i++ {
		mfgr := r.rangeInt(1, 5)
		brand := mfgr*10 + r.rangeInt(1, 5)
		t.MustAppend(storage.Row{
			storage.NewInt(int64(i)),
			storage.NewString(r.words(3)),
			storage.NewString(fmt.Sprintf("Manufacturer#%d", mfgr)),
			storage.NewString(fmt.Sprintf("Brand#%d", brand)),
			storage.NewString(r.pick(typeSyl1) + " " + r.pick(typeSyl2) + " " + r.pick(typeSyl3)),
			storage.NewInt(int64(r.rangeInt(1, 50))),
			storage.NewString(r.pick(containers)),
			storage.NewFloat(partPrice(i)),
			storage.NewString(r.words(3)),
		})
	}
	g.cat.MustAdd(t)
}

// partPrice follows the spec formula: 90000+((partkey/10)%20001)+100*(partkey%1000), cents.
func partPrice(partkey int) float64 {
	cents := 90_000 + (partkey/10)%20_001 + 100*(partkey%1_000)
	return float64(cents) / 100
}

func (g *generator) partsupp(r *rng) {
	t := storage.NewTable("partsupp", partsuppSchema())
	// Four suppliers per part, per the spec.
	for p := 1; p <= g.nPart; p++ {
		for j := 0; j < 4; j++ {
			s := (p+j*(g.nSupplier/4+1))%g.nSupplier + 1
			t.MustAppend(storage.Row{
				storage.NewInt(int64(p)),
				storage.NewInt(int64(s)),
				storage.NewInt(int64(r.rangeInt(1, 9999))),
				storage.NewFloat(r.money(1.00, 1000.00)),
				storage.NewString(r.words(4)),
			})
		}
	}
	g.cat.MustAdd(t)
}

func (g *generator) ordersAndLineitem(r *rng) error {
	orders := storage.NewTable("orders", ordersSchema())
	lineitem := storage.NewTable("lineitem", lineitemSchema())
	cutoff := CurrentDate.I

	for o := 1; o <= g.nOrders; o++ {
		orderdate := startDate + int64(r.intn(int(endDate-startDate-151)))
		custkey := int64(r.rangeInt(1, g.nCustomer))
		nLines := r.rangeInt(1, 7)

		var total float64
		allShipped := true
		for ln := 1; ln <= nLines; ln++ {
			partkey := r.rangeInt(1, g.nPart)
			suppkey := int64(r.rangeInt(1, g.nSupplier))
			quantity := float64(r.rangeInt(1, 50))
			extprice := quantity * partPrice(partkey)
			discount := float64(r.rangeInt(0, 10)) / 100
			tax := float64(r.rangeInt(0, 8)) / 100

			shipdate := orderdate + int64(r.rangeInt(1, 121))
			commitdate := orderdate + int64(r.rangeInt(30, 90))
			receiptdate := shipdate + int64(r.rangeInt(1, 30))

			returnflag := "N"
			if receiptdate <= cutoff {
				if r.intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			}
			linestatus := "O"
			if shipdate <= cutoff {
				linestatus = "F"
			} else {
				allShipped = false
			}

			total += extprice * (1 + tax) * (1 - discount)
			lineitem.MustAppend(storage.Row{
				storage.NewInt(int64(o)),
				storage.NewInt(int64(partkey)),
				storage.NewInt(suppkey),
				storage.NewInt(int64(ln)),
				storage.NewFloat(quantity),
				storage.NewFloat(extprice),
				storage.NewFloat(discount),
				storage.NewFloat(tax),
				storage.NewString(returnflag),
				storage.NewString(linestatus),
				storage.NewDate(shipdate),
				storage.NewDate(commitdate),
				storage.NewDate(receiptdate),
				storage.NewString(r.pick(instructs)),
				storage.NewString(r.pick(shipmodes)),
				storage.NewString(r.words(3)),
			})
		}

		status := "O"
		if allShipped {
			status = "F"
		} else if r.intn(4) == 0 {
			status = "P"
		}
		orders.MustAppend(storage.Row{
			storage.NewInt(int64(o)),
			storage.NewInt(custkey),
			storage.NewString(status),
			storage.NewFloat(total),
			storage.NewDate(orderdate),
			storage.NewString(r.pick(priorities)),
			storage.NewString(fmt.Sprintf("Clerk#%09d", r.rangeInt(1, 1000))),
			storage.NewInt(0),
			storage.NewString(r.words(4)),
		})
	}

	g.cat.MustAdd(orders)
	g.cat.MustAdd(lineitem)
	return nil
}

// buildIndexes constructs the access paths the paper's plans rely on.
func (g *generator) buildIndexes() error {
	unique := []struct{ table, column string }{
		{"region", "r_regionkey"},
		{"nation", "n_nationkey"},
		{"supplier", "s_suppkey"},
		{"customer", "c_custkey"},
		{"part", "p_partkey"},
		{"orders", "o_orderkey"},
	}
	for _, u := range unique {
		if err := g.index(u.table, u.column, true); err != nil {
			return err
		}
	}
	// Foreign-key index used by index-nested-loop joins from orders into
	// lineitem and by merge joins over l_orderkey.
	return g.index("lineitem", "l_orderkey", false)
}

func (g *generator) index(table, column string, uniq bool) error {
	t, err := g.cat.Table(table)
	if err != nil {
		return err
	}
	col, err := t.Schema().ColumnIndex("", column)
	if err != nil || col < 0 {
		return fmt.Errorf("tpch: cannot index %s.%s: %v", table, column, err)
	}
	tree := btree.New()
	for rid, row := range t.Rows() {
		tree.Insert(row[col].I, rid)
	}
	return t.AddIndex(&storage.IndexMeta{
		Name:   table + "_" + column + "_idx",
		Column: column,
		Unique: uniq,
		Search: tree,
	})
}

func phone(r *rng) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d",
		r.rangeInt(10, 34), r.rangeInt(100, 999), r.rangeInt(100, 999), r.rangeInt(1000, 9999))
}
