package tpch

import "bufferdb/internal/storage"

// SchemaCatalog builds a catalog holding all eight TPC-H tables with their
// schemas but no rows. The distributed coordinator analyzes shard-bound
// statements against it: name resolution and typing need only the shapes,
// never the data.
func SchemaCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	for _, sch := range []storage.Schema{
		regionSchema(), nationSchema(), supplierSchema(), customerSchema(),
		partSchema(), partsuppSchema(), ordersSchema(), lineitemSchema(),
	} {
		cat.MustAdd(storage.NewTable(sch[0].Table, sch))
	}
	return cat
}

// Schemas for the eight TPC-H tables. Column order matches the TPC-H
// specification so positional tests read naturally.

func regionSchema() storage.Schema {
	return storage.Schema{
		{Table: "region", Name: "r_regionkey", Type: storage.TypeInt64},
		{Table: "region", Name: "r_name", Type: storage.TypeString},
		{Table: "region", Name: "r_comment", Type: storage.TypeString},
	}
}

func nationSchema() storage.Schema {
	return storage.Schema{
		{Table: "nation", Name: "n_nationkey", Type: storage.TypeInt64},
		{Table: "nation", Name: "n_name", Type: storage.TypeString},
		{Table: "nation", Name: "n_regionkey", Type: storage.TypeInt64},
		{Table: "nation", Name: "n_comment", Type: storage.TypeString},
	}
}

func supplierSchema() storage.Schema {
	return storage.Schema{
		{Table: "supplier", Name: "s_suppkey", Type: storage.TypeInt64},
		{Table: "supplier", Name: "s_name", Type: storage.TypeString},
		{Table: "supplier", Name: "s_address", Type: storage.TypeString},
		{Table: "supplier", Name: "s_nationkey", Type: storage.TypeInt64},
		{Table: "supplier", Name: "s_phone", Type: storage.TypeString},
		{Table: "supplier", Name: "s_acctbal", Type: storage.TypeFloat64},
		{Table: "supplier", Name: "s_comment", Type: storage.TypeString},
	}
}

func customerSchema() storage.Schema {
	return storage.Schema{
		{Table: "customer", Name: "c_custkey", Type: storage.TypeInt64},
		{Table: "customer", Name: "c_name", Type: storage.TypeString},
		{Table: "customer", Name: "c_address", Type: storage.TypeString},
		{Table: "customer", Name: "c_nationkey", Type: storage.TypeInt64},
		{Table: "customer", Name: "c_phone", Type: storage.TypeString},
		{Table: "customer", Name: "c_acctbal", Type: storage.TypeFloat64},
		{Table: "customer", Name: "c_mktsegment", Type: storage.TypeString},
		{Table: "customer", Name: "c_comment", Type: storage.TypeString},
	}
}

func partSchema() storage.Schema {
	return storage.Schema{
		{Table: "part", Name: "p_partkey", Type: storage.TypeInt64},
		{Table: "part", Name: "p_name", Type: storage.TypeString},
		{Table: "part", Name: "p_mfgr", Type: storage.TypeString},
		{Table: "part", Name: "p_brand", Type: storage.TypeString},
		{Table: "part", Name: "p_type", Type: storage.TypeString},
		{Table: "part", Name: "p_size", Type: storage.TypeInt64},
		{Table: "part", Name: "p_container", Type: storage.TypeString},
		{Table: "part", Name: "p_retailprice", Type: storage.TypeFloat64},
		{Table: "part", Name: "p_comment", Type: storage.TypeString},
	}
}

func partsuppSchema() storage.Schema {
	return storage.Schema{
		{Table: "partsupp", Name: "ps_partkey", Type: storage.TypeInt64},
		{Table: "partsupp", Name: "ps_suppkey", Type: storage.TypeInt64},
		{Table: "partsupp", Name: "ps_availqty", Type: storage.TypeInt64},
		{Table: "partsupp", Name: "ps_supplycost", Type: storage.TypeFloat64},
		{Table: "partsupp", Name: "ps_comment", Type: storage.TypeString},
	}
}

func ordersSchema() storage.Schema {
	return storage.Schema{
		{Table: "orders", Name: "o_orderkey", Type: storage.TypeInt64},
		{Table: "orders", Name: "o_custkey", Type: storage.TypeInt64},
		{Table: "orders", Name: "o_orderstatus", Type: storage.TypeString},
		{Table: "orders", Name: "o_totalprice", Type: storage.TypeFloat64},
		{Table: "orders", Name: "o_orderdate", Type: storage.TypeDate},
		{Table: "orders", Name: "o_orderpriority", Type: storage.TypeString},
		{Table: "orders", Name: "o_clerk", Type: storage.TypeString},
		{Table: "orders", Name: "o_shippriority", Type: storage.TypeInt64},
		{Table: "orders", Name: "o_comment", Type: storage.TypeString},
	}
}

func lineitemSchema() storage.Schema {
	return storage.Schema{
		{Table: "lineitem", Name: "l_orderkey", Type: storage.TypeInt64},
		{Table: "lineitem", Name: "l_partkey", Type: storage.TypeInt64},
		{Table: "lineitem", Name: "l_suppkey", Type: storage.TypeInt64},
		{Table: "lineitem", Name: "l_linenumber", Type: storage.TypeInt64},
		{Table: "lineitem", Name: "l_quantity", Type: storage.TypeFloat64},
		{Table: "lineitem", Name: "l_extendedprice", Type: storage.TypeFloat64},
		{Table: "lineitem", Name: "l_discount", Type: storage.TypeFloat64},
		{Table: "lineitem", Name: "l_tax", Type: storage.TypeFloat64},
		{Table: "lineitem", Name: "l_returnflag", Type: storage.TypeString},
		{Table: "lineitem", Name: "l_linestatus", Type: storage.TypeString},
		{Table: "lineitem", Name: "l_shipdate", Type: storage.TypeDate},
		{Table: "lineitem", Name: "l_commitdate", Type: storage.TypeDate},
		{Table: "lineitem", Name: "l_receiptdate", Type: storage.TypeDate},
		{Table: "lineitem", Name: "l_shipinstruct", Type: storage.TypeString},
		{Table: "lineitem", Name: "l_shipmode", Type: storage.TypeString},
		{Table: "lineitem", Name: "l_comment", Type: storage.TypeString},
	}
}
