// Package tpch is a deterministic, in-process TPC-H data generator.
//
// It stands in for the dbgen tool the paper loaded into PostgreSQL (scale
// factor 0.2). The substitution keeps everything the experiments depend on:
// the schema, the foreign-key structure (each order has 1–7 lineitems, every
// lineitem joins to exactly one order), the value distributions that drive
// predicate selectivity (shipdate spread, discount/quantity ranges), and
// deterministic content for reproducible results. It intentionally
// simplifies what the experiments do not depend on: order keys are dense
// rather than sparse, and text columns use a compact lexicon instead of
// dbgen's grammar.
package tpch

// rng is a splitmix64 pseudo-random generator. The generator is hand-rolled
// (rather than math/rand) so that generated databases are bit-identical
// across Go releases — EXPERIMENTS.md quotes row counts and aggregates that
// must stay stable.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	return &rng{state: seed}
}

// next64 advances the generator (splitmix64).
func (r *rng) next64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("tpch: intn needs n > 0")
	}
	return int(r.next64() % uint64(n))
}

// rangeInt returns a uniform integer in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next64()>>11) / (1 << 53)
}

// money returns a uniform amount in [lo, hi] with two decimal places.
func (r *rng) money(lo, hi float64) float64 {
	cents := int64(lo*100) + int64(r.next64()%uint64((hi-lo)*100+1))
	return float64(cents) / 100
}

// pick returns a uniformly chosen element.
func (r *rng) pick(options []string) string {
	return options[r.intn(len(options))]
}

// words returns n space-joined lexicon words, used for comment columns.
func (r *rng) words(n int) string {
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, lexicon[r.intn(len(lexicon))]...)
	}
	return string(out)
}

// lexicon is the word list for generated text columns. Small on purpose:
// the experiments never read comments, they only need realistic row widths.
var lexicon = []string{
	"furiously", "quickly", "carefully", "blithely", "slyly",
	"regular", "special", "express", "final", "ironic",
	"deposits", "requests", "accounts", "packages", "theodolites",
	"sleep", "nag", "haggle", "wake", "cajole",
}
