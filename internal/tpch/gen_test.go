package tpch

import (
	"errors"
	"math"
	"testing"

	"bufferdb/internal/btree"
	"bufferdb/internal/storage"
)

// testDB generates a tiny database once and shares it across tests.
var testDB = func() *storage.Catalog {
	cat, err := Generate(Config{ScaleFactor: 0.002})
	if err != nil {
		panic(err)
	}
	return cat
}()

func table(t *testing.T, name string) *storage.Table {
	t.Helper()
	tbl, err := testDB.Table(name)
	if err != nil {
		t.Fatalf("table %s: %v", name, err)
	}
	return tbl
}

func TestGenerateRejectsBadScale(t *testing.T) {
	for _, sf := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := Generate(Config{ScaleFactor: sf})
		if err == nil {
			t.Errorf("SF %v accepted", sf)
			continue
		}
		if !errors.Is(err, ErrBadScaleFactor) {
			t.Errorf("SF %v: error %v does not wrap ErrBadScaleFactor", sf, err)
		}
	}
}

func TestCardinalities(t *testing.T) {
	cases := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 20,  // 10000 * 0.002
		"customer": 300, // 150000 * 0.002
		"part":     400, // 200000 * 0.002
		"orders":   3000,
	}
	for name, want := range cases {
		if got := table(t, name).NumRows(); got != want {
			t.Errorf("%s rows = %d, want %d", name, got, want)
		}
	}
	if got := table(t, "partsupp").NumRows(); got != 4*400 {
		t.Errorf("partsupp rows = %d, want %d", got, 1600)
	}
	// Lineitems average 4 per order.
	li := table(t, "lineitem").NumRows()
	if li < 3000 || li > 7*3000 {
		t.Errorf("lineitem rows = %d, out of [3000, 21000]", li)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Config{ScaleFactor: 0.001, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{ScaleFactor: 0.001, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lineitem", "orders", "customer"} {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s cardinality differs across identical seeds", name)
		}
		for i := 0; i < ta.NumRows(); i++ {
			if ta.Row(i).String() != tb.Row(i).String() {
				t.Fatalf("%s row %d differs: %s vs %s", name, i, ta.Row(i), tb.Row(i))
			}
		}
	}
	c, err := Generate(Config{ScaleFactor: 0.001, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := c.Table("orders")
	ta, _ := a.Table("orders")
	same := true
	for i := 0; i < ta.NumRows() && i < tc.NumRows(); i++ {
		if ta.Row(i).String() != tc.Row(i).String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical orders")
	}
}

func TestForeignKeys(t *testing.T) {
	orders := table(t, "orders")
	lineitem := table(t, "lineitem")
	customer := table(t, "customer")

	nOrders := int64(orders.NumRows())
	nCust := int64(customer.NumRows())

	// Every order's custkey must reference an existing customer, and
	// o_orderkey must be dense 1..N.
	for i, row := range orders.Rows() {
		if row[0].I != int64(i+1) {
			t.Fatalf("order %d has key %d, want dense keys", i, row[0].I)
		}
		if ck := row[1].I; ck < 1 || ck > nCust {
			t.Fatalf("order %d references customer %d of %d", i, ck, nCust)
		}
	}
	// Every lineitem must reference an existing order, with line numbers
	// restarting at 1 per order.
	prevOrder, prevLine := int64(0), int64(0)
	for i, row := range lineitem.Rows() {
		ok, ln := row[0].I, row[3].I
		if ok < 1 || ok > nOrders {
			t.Fatalf("lineitem %d references order %d of %d", i, ok, nOrders)
		}
		if ok == prevOrder {
			if ln != prevLine+1 {
				t.Fatalf("lineitem %d: line %d after %d within order %d", i, ln, prevLine, ok)
			}
		} else if ln != 1 {
			t.Fatalf("lineitem %d: first line of order %d is %d", i, ok, ln)
		}
		prevOrder, prevLine = ok, ln
	}
}

func TestDateInvariants(t *testing.T) {
	lineitem := table(t, "lineitem")
	orders := table(t, "orders")
	sch := lineitem.Schema()
	idxShip, _ := sch.ColumnIndex("", "l_shipdate")
	idxReceipt, _ := sch.ColumnIndex("", "l_receiptdate")
	idxOK, _ := sch.ColumnIndex("", "l_orderkey")
	for i, row := range lineitem.Rows() {
		odate := orders.Row(int(row[idxOK].I) - 1)[4].I
		ship, receipt := row[idxShip].I, row[idxReceipt].I
		if ship <= odate {
			t.Fatalf("lineitem %d shipped on/before order date", i)
		}
		if receipt <= ship {
			t.Fatalf("lineitem %d received on/before ship date", i)
		}
	}
	// Order dates inside the spec range.
	for i, row := range orders.Rows() {
		d := row[4].I
		if d < startDate || d > endDate {
			t.Fatalf("order %d date %v out of range", i, storage.NewDate(d))
		}
	}
}

func TestValueRanges(t *testing.T) {
	lineitem := table(t, "lineitem")
	for i, row := range lineitem.Rows() {
		q, disc, tax := row[4].F, row[6].F, row[7].F
		if q < 1 || q > 50 {
			t.Fatalf("lineitem %d quantity %v", i, q)
		}
		if disc < 0 || disc > 0.10 {
			t.Fatalf("lineitem %d discount %v", i, disc)
		}
		if tax < 0 || tax > 0.08 {
			t.Fatalf("lineitem %d tax %v", i, tax)
		}
		if rf := row[8].S; rf != "R" && rf != "A" && rf != "N" {
			t.Fatalf("lineitem %d returnflag %q", i, rf)
		}
		if ls := row[9].S; ls != "O" && ls != "F" {
			t.Fatalf("lineitem %d linestatus %q", i, ls)
		}
	}
}

func TestShipdateSelectivitySpread(t *testing.T) {
	// The cardinality-sweep experiment (Fig. 11) varies predicate
	// selectivity via shipdate cutoffs; that only works if shipdates are
	// well spread. Check the 1995 midpoint splits the table non-trivially.
	lineitem := table(t, "lineitem")
	cutoff := storage.DateFromYMD(1995, 6, 17).I
	before := 0
	for _, row := range lineitem.Rows() {
		if row[10].I <= cutoff {
			before++
		}
	}
	frac := float64(before) / float64(lineitem.NumRows())
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("shipdate <= 1995-06-17 selects %.2f of lineitem, want a near-even split", frac)
	}
}

func TestIndexes(t *testing.T) {
	orders := table(t, "orders")
	meta := orders.IndexOn("o_orderkey")
	if meta == nil || !meta.Unique {
		t.Fatalf("orders pkey index missing: %+v", meta)
	}
	tree, ok := meta.Search.(*btree.Tree)
	if !ok {
		t.Fatalf("index search structure is %T", meta.Search)
	}
	rid, found := tree.LookupOne(100)
	if !found || orders.Row(rid)[0].I != 100 {
		t.Errorf("pkey lookup(100) → rid %d, found=%v", rid, found)
	}

	li := table(t, "lineitem")
	fk := li.IndexOn("l_orderkey")
	if fk == nil || fk.Unique {
		t.Fatalf("lineitem fk index wrong: %+v", fk)
	}
	fkTree := fk.Search.(*btree.Tree)
	rids, found := fkTree.Lookup(100)
	if !found || len(rids) < 1 || len(rids) > 7 {
		t.Fatalf("fk lookup(100) = %v, %v", rids, found)
	}
	for _, r := range rids {
		if li.Row(r)[0].I != 100 {
			t.Errorf("fk rid %d points at order %d", r, li.Row(r)[0].I)
		}
	}
	if errs := fkTree.CheckInvariants(); len(errs) != 0 {
		t.Errorf("fk tree invariants: %v", errs)
	}

	// SkipIndexes must skip.
	bare, err := Generate(Config{ScaleFactor: 0.001, SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	bo, _ := bare.Table("orders")
	if bo.IndexOn("o_orderkey") != nil {
		t.Error("SkipIndexes still built indexes")
	}
}

func TestOrderTotalsConsistent(t *testing.T) {
	// o_totalprice must equal the sum over the order's lineitems of
	// extendedprice * (1+tax) * (1-discount), within float tolerance.
	orders := table(t, "orders")
	lineitem := table(t, "lineitem")
	sums := make([]float64, orders.NumRows()+1)
	for _, row := range lineitem.Rows() {
		ok := row[0].I
		sums[ok] += row[5].F * (1 + row[7].F) * (1 - row[6].F)
	}
	for i, row := range orders.Rows() {
		want := sums[i+1]
		got := row[3].F
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("order %d totalprice %v, lineitems sum to %v", i+1, got, want)
		}
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(10000, 0.002) != 20 {
		t.Errorf("scaled(10000, 0.002) = %d", scaled(10000, 0.002))
	}
	if scaled(10, 0.0001) != 1 {
		t.Error("scaled must floor at 1")
	}
}
