package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/obsv"
	"bufferdb/internal/server"
	"bufferdb/internal/wire"
)

// testSF is small enough to generate in milliseconds but large enough that
// a full lineitem scan streams dozens of row batches.
const testSF = 0.002

// newDB builds a test database with memory tracking live and a fixed
// refinement threshold so tests skip calibration.
func newDB(t testing.TB, opts bufferdb.Options) *bufferdb.DB {
	t.Helper()
	if opts.CardinalityThreshold == 0 {
		opts.CardinalityThreshold = 100
	}
	if opts.MemoryLimit == 0 {
		opts.MemoryLimit = 256 << 20
	}
	db, err := bufferdb.OpenTPCH(testSF, opts)
	if err != nil {
		t.Fatalf("OpenTPCH: %v", err)
	}
	return db
}

// startServer serves cfg on a loopback listener and tears it down with the
// test. It returns the server and its dial address.
func startServer(t testing.TB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil && err != server.ErrServerClosed {
			t.Errorf("serve returned: %v", err)
		}
	})
	return srv, l.Addr().String()
}

// dial connects a client and closes it with the test.
func dial(t testing.TB, addr string, cfg client.Config) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatalf("client.Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// resultString canonicalizes a materialized result for comparison.
func resultString(cols []string, rows [][]any) string {
	var b strings.Builder
	fmt.Fprintln(&b, cols)
	for _, r := range rows {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitGoroutines retries until the goroutine count settles back to (or
// below) the baseline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	var n int
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
}

const aggQuery = `SELECT l_returnflag, COUNT(*), SUM(l_extendedprice) FROM lineitem
 WHERE l_quantity > 10 GROUP BY l_returnflag ORDER BY l_returnflag`

// slowQuery streams the whole lineitem table; paired with slowHook it
// stays genuinely in flight for seconds, so tests can cancel, disconnect
// or shut down mid-stream without racing query completion. (Without the
// throttle the full result fits in kernel socket buffers and the server
// finishes before the client reads row two.)
const slowQuery = `SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_orderkey > 0`

// slowHook throttles slowQuery server-side: 2ms per scanned row.
func slowHook(sql string) *bufferdb.FaultInjector {
	if !strings.Contains(sql, "l_orderkey > 0") {
		return nil
	}
	return bufferdb.NewFaultInjector(1, bufferdb.Fault{
		Match: "Scan", Kind: bufferdb.FaultLatency, Latency: 2 * time.Millisecond, Every: 1,
	})
}

// TestQueryRoundTrip asserts a remote query returns exactly what the
// embedded engine returns, across engines and value types.
func TestQueryRoundTrip(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{})

	queries := []string{
		aggQuery,
		`SELECT COUNT(*) FROM lineitem`,
		// Dates, strings, floats and NULL-free ints in one projection.
		`SELECT l_orderkey, l_linenumber, l_shipdate, l_comment, l_discount FROM lineitem
		 WHERE l_orderkey < 100 ORDER BY l_orderkey, l_linenumber LIMIT 20`,
		`SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_totalprice > 1000`,
	}
	for _, engine := range []string{"", "vec"} {
		for _, q := range queries {
			var localOpts []bufferdb.QueryOption
			var remoteOpts []client.Option
			if engine != "" {
				localOpts = append(localOpts, bufferdb.WithEngine(bufferdb.Engine(engine)))
				remoteOpts = append(remoteOpts, client.WithEngine(engine))
			}
			local, err := db.Query(context.Background(), q, localOpts...)
			if err != nil {
				t.Fatalf("local %q: %v", q, err)
			}
			remote, err := c.QueryAll(context.Background(), q, remoteOpts...)
			if err != nil {
				t.Fatalf("remote %q: %v", q, err)
			}
			want := resultString(local.Columns, local.Rows)
			got := resultString(remote.Columns, remote.Rows)
			if got != want {
				t.Fatalf("engine %q query %q:\nremote %s\nlocal %s", engine, q, got, want)
			}
		}
	}
}

// TestQueryErrors asserts statement failures come back as typed error
// frames that keep the session usable.
func TestQueryErrors(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{})

	_, err := c.QueryAll(context.Background(), "SELECT * FROM nosuchtable")
	var serr *client.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.CodeQuery {
		t.Fatalf("unknown table: got %v, want ServerError with CodeQuery", err)
	}
	if !strings.Contains(serr.Msg, "nosuchtable") {
		t.Fatalf("error message lost the table name: %q", serr.Msg)
	}
	if _, err := c.QueryAll(context.Background(), "SELECT"); err == nil {
		t.Fatal("parse error did not surface")
	}
	// The session survives failed statements.
	if _, err := c.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation"); err != nil {
		t.Fatalf("query after errors: %v", err)
	}
}

// TestUnknownEngineOverWire asserts the engine check crosses the wire.
func TestUnknownEngineOverWire(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{})
	_, err := c.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation", client.WithEngine("warp"))
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("got %v, want unknown engine error", err)
	}
}

// TestTables asserts the catalog frame.
func TestTables(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{})
	tabs, err := c.Tables(context.Background())
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	if len(tabs) != 8 {
		t.Fatalf("got %d tables: %v", len(tabs), tabs)
	}
	byName := map[string]uint64{}
	for _, ti := range tabs {
		byName[ti.Name] = ti.Rows
	}
	if byName["nation"] != 25 {
		t.Fatalf("nation rows = %d, want 25", byName["nation"])
	}
}

// TestConcurrentClients drives 32 concurrent client connections through
// the admission-controlled engine and asserts every query answers
// correctly — the issue's end-to-end concurrency bar.
func TestConcurrentClients(t *testing.T) {
	db := newDB(t, bufferdb.Options{
		Parallelism: 2,
		Admission:   bufferdb.AdmissionConfig{MaxConcurrent: 8, MaxQueued: 64},
	})
	_, addr := startServer(t, server.Config{DB: db})

	want, err := db.Query(context.Background(), aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantStr := resultString(want.Columns, want.Rows)

	const clients = 32
	const queriesEach = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*queriesEach)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr, client.Config{MaxConns: 1})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < queriesEach; j++ {
				res, err := c.QueryAll(context.Background(), aggQuery)
				if err != nil {
					errs <- err
					return
				}
				if got := resultString(res.Columns, res.Rows); got != wantStr {
					errs <- fmt.Errorf("wrong result:\n%s", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.TrackedBytes() != 0 {
		t.Fatalf("tracked bytes after drain: %d", db.TrackedBytes())
	}
}

// TestBusyTypedAndRetry asserts admission shedding surfaces as
// bufferdb.ErrServerBusy through the wire, and that the client's
// backoff-retry path rides out transient saturation.
func TestBusyTypedAndRetry(t *testing.T) {
	db := newDB(t, bufferdb.Options{
		Admission: bufferdb.AdmissionConfig{MaxConcurrent: 1, MaxQueued: 0},
	})
	_, addr := startServer(t, server.Config{DB: db, FaultHook: slowHook, BatchRows: 32})

	holder := dial(t, addr, client.Config{MaxConns: 2, BusyRetries: -1})
	// Hold the only slot: stream without draining (the slot is released at
	// the last row frame or Close).
	rows, err := holder.Query(context.Background(), slowQuery)
	if err != nil {
		t.Fatalf("holder query: %v", err)
	}
	if !rows.Next() {
		t.Fatalf("holder stream empty: %v", rows.Err())
	}

	// No retries: the busy error surfaces, typed.
	_, err = holder.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation")
	if !errors.Is(err, bufferdb.ErrServerBusy) {
		t.Fatalf("got %v, want ErrServerBusy", err)
	}

	// With retries: free the slot mid-backoff and the query succeeds.
	retrier := dial(t, addr, client.Config{MaxConns: 1, BusyRetries: 20, RetryBackoff: 20 * time.Millisecond})
	go func() {
		time.Sleep(60 * time.Millisecond)
		rows.Close()
	}()
	if _, err := retrier.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation"); err != nil {
		t.Fatalf("retried query failed: %v", err)
	}
}

// TestMemoryBudgetOverWire asserts a memory-limit overrun crosses the wire
// typed.
func TestMemoryBudgetOverWire(t *testing.T) {
	db := newDB(t, bufferdb.Options{MemoryLimit: 32 << 10})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{})
	_, err := c.QueryAll(context.Background(),
		"SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey")
	if !errors.Is(err, bufferdb.ErrMemoryBudgetExceeded) {
		t.Fatalf("got %v, want ErrMemoryBudgetExceeded", err)
	}
	if db.TrackedBytes() != 0 {
		t.Fatalf("tracked bytes after OOM: %d", db.TrackedBytes())
	}
}

// TestCancelMidStream cancels a query's context while its result streams
// and asserts the cancel frame reaches the server: the slot frees, memory
// drains, and the connection serves the next query.
func TestCancelMidStream(t *testing.T) {
	db := newDB(t, bufferdb.Options{
		Admission: bufferdb.AdmissionConfig{MaxConcurrent: 1, MaxQueued: 0},
	})
	_, addr := startServer(t, server.Config{DB: db, FaultHook: slowHook, BatchRows: 32})
	c := dial(t, addr, client.Config{MaxConns: 2, BusyRetries: -1})

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := c.Query(ctx, slowQuery)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	rows.Close()

	// The canceled query's admission slot (MaxConcurrent=1) must be free.
	waitFor(t, "admission slot release", func() bool {
		_, err := c.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation")
		return err == nil
	})
	waitFor(t, "tracked bytes drain", func() bool { return db.TrackedBytes() == 0 })
}

// TestGoroutineLeakClientDisconnect kills a raw connection mid-stream and
// asserts the server cancels the query, frees its admission slot, returns
// tracked memory to zero and leaks no goroutines.
func TestGoroutineLeakClientDisconnect(t *testing.T) {
	db := newDB(t, bufferdb.Options{
		Admission: bufferdb.AdmissionConfig{MaxConcurrent: 1, MaxQueued: 0},
	})
	_, addr := startServer(t, server.Config{DB: db, FaultHook: slowHook, BatchRows: 32})
	base := runtime.NumGoroutine()

	// Speak the protocol by hand so the disconnect is abrupt: no Cancel
	// frame, no drain — just a dead socket mid-stream.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hello wire.Builder
	hello.U32(wire.Magic)
	hello.U8(wire.Version)
	if err := wire.WriteFrame(nc, wire.THello, hello.Bytes()); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := wire.ReadFrame(nc); err != nil || ft != wire.THelloOK {
		t.Fatalf("handshake: %v %v", ft, err)
	}
	var q wire.Builder
	q.Opts(wire.QueryOpts{})
	q.String(slowQuery)
	if err := wire.WriteFrame(nc, wire.TQuery, q.Bytes()); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := wire.ReadFrame(nc); err != nil || ft != wire.TColumns {
		t.Fatalf("columns: %v %v", ft, err)
	}
	if ft, _, err := wire.ReadFrame(nc); err != nil || ft != wire.TRowBatch {
		t.Fatalf("first batch: %v %v", ft, err)
	}
	nc.Close()

	waitFor(t, "tracked bytes drain after disconnect", func() bool { return db.TrackedBytes() == 0 })
	// The slot must be free for the next client.
	c := dial(t, addr, client.Config{BusyRetries: -1})
	waitFor(t, "admission slot release after disconnect", func() bool {
		_, err := c.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation")
		return err == nil
	})
	c.Close()
	waitGoroutines(t, base)
}

// TestGoroutineLeakServerShutdown shuts the server down with a query
// streaming and asserts everything unwinds: Shutdown returns, the query's
// memory drains, no goroutines leak, and the client sees a typed error.
func TestGoroutineLeakServerShutdown(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	srv, err := server.New(server.Config{DB: db, FaultHook: slowHook, BatchRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := client.Dial(l.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query(context.Background(), slowQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != server.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	// Drain the client cursor; it must terminate (shutdown error frame or
	// closed connection), not hang.
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Fatal("stream survived server shutdown without an error")
	}
	rows.Close()
	c.Close()

	waitFor(t, "tracked bytes drain after shutdown", func() bool { return db.TrackedBytes() == 0 })
	waitGoroutines(t, base)
}

// TestPreparedReuse asserts prepared statements execute correctly and that
// the server-side statement LRU shares one plan across connections.
func TestPreparedReuse(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})

	hits := obsv.Default.Counter("bufferdbd_stmt_cache_hits_total")
	misses := obsv.Default.Counter("bufferdbd_stmt_cache_misses_total")
	h0, m0 := hits.Value(), misses.Value()

	want, err := db.Query(context.Background(), aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantStr := resultString(want.Columns, want.Rows)

	c1 := dial(t, addr, client.Config{MaxConns: 1})
	st := c1.Prepare(aggQuery)
	for i := 0; i < 3; i++ {
		res, err := st.QueryAll(context.Background())
		if err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
		if got := resultString(res.Columns, res.Rows); got != wantStr {
			t.Fatalf("execute %d: wrong result", i)
		}
	}
	// One wire prepare for three executions on this connection.
	if got := misses.Value() - m0; got != 1 {
		t.Fatalf("stmt cache misses = %d, want 1", got)
	}

	// A second client preparing the same SQL hits the shared LRU.
	c2 := dial(t, addr, client.Config{MaxConns: 1})
	if _, err := c2.Prepare(aggQuery).QueryAll(context.Background()); err != nil {
		t.Fatalf("second client: %v", err)
	}
	if got := hits.Value() - h0; got != 1 {
		t.Fatalf("stmt cache hits = %d, want 1", got)
	}

	// Prepare of an invalid statement fails typed at prepare time.
	if _, err := c1.Prepare("SELECT * FROM ghost").QueryAll(context.Background()); err == nil {
		t.Fatal("prepare of unknown table succeeded")
	}
}

// TestStmtCloseConcurrentWithQueries asserts Stmt.Close is safe while
// other goroutines run queries on the same pool: Close must only touch
// connections it has checked out, never one an in-flight query owns
// (regression: it used to mutate idle conns in place, racing acquire).
func TestStmtCloseConcurrentWithQueries(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{MaxConns: 4})

	const q = `SELECT COUNT(*) FROM nation`
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := c.Prepare(q)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.QueryAll(context.Background()); err != nil {
					t.Errorf("prepared query: %v", err)
					return
				}
			}
		}()
	}
	// One goroutine closes handles for the same SQL in a tight loop: its
	// Close walks the pool's conns and touches the same per-conn stmts
	// maps the query workers read while executing.
	for i := 0; i < 200; i++ {
		if err := c.Prepare(q).Close(); err != nil {
			t.Fatalf("stmt close: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// The pool stays healthy: a fresh statement still round-trips.
	if _, err := c.Prepare(aggQuery).QueryAll(context.Background()); err != nil {
		t.Fatalf("query after concurrent closes: %v", err)
	}
}

// TestResultCacheReuse asserts the opt-in result cache replays identical
// read-only queries byte-for-byte and honors the per-statement opt-out.
func TestResultCacheReuse(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db, ResultCacheBytes: 1 << 20})
	c := dial(t, addr, client.Config{MaxConns: 1})

	hits := obsv.Default.Counter("bufferdbd_result_cache_hits_total")
	cached := obsv.Default.Counter(`bufferdbd_queries_total{source="cached"}`)
	h0, c0 := hits.Value(), cached.Value()

	first, err := c.QueryAll(context.Background(), aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.QueryAll(context.Background(), aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	if resultString(first.Columns, first.Rows) != resultString(second.Columns, second.Rows) {
		t.Fatal("cached replay differs from the original result")
	}
	if hits.Value()-h0 != 1 || cached.Value()-c0 != 1 {
		t.Fatalf("cache hit not recorded (hits %d, cached %d)", hits.Value()-h0, cached.Value()-c0)
	}

	// Opt-out skips the cache.
	if _, err := c.QueryAll(context.Background(), aggQuery, client.WithoutResultCache()); err != nil {
		t.Fatal(err)
	}
	if hits.Value()-h0 != 1 {
		t.Fatal("opt-out query hit the cache")
	}

	// Different options miss: the cache key carries plan-shaping options.
	if _, err := c.QueryAll(context.Background(), aggQuery, client.WithEngine("vec")); err != nil {
		t.Fatal(err)
	}
	if hits.Value()-h0 != 1 {
		t.Fatal("vec-engine query hit the volcano entry")
	}
}

// TestResultCachePerTableInvalidation: an INSERT drops exactly the cached
// results that read its target table — entries over untouched tables keep
// replaying, and the re-executed query sees the new rows.
func TestResultCachePerTableInvalidation(t *testing.T) {
	db := newDB(t, bufferdb.Options{DataDir: t.TempDir()})
	t.Cleanup(func() { db.Close() })
	_, addr := startServer(t, server.Config{DB: db, ResultCacheBytes: 1 << 20})
	c := dial(t, addr, client.Config{MaxConns: 1})

	hits := obsv.Default.Counter("bufferdbd_result_cache_hits_total")
	invals := obsv.Default.Counter("bufferdbd_result_cache_invalidations_total")

	const regionCount = "SELECT COUNT(*) FROM region"
	const nationCount = "SELECT COUNT(*) FROM nation"
	run := func(q string) int64 {
		t.Helper()
		res, err := c.QueryAll(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].(int64)
	}

	// Populate both entries.
	before := run(regionCount)
	run(nationCount)

	// Both replay from the cache.
	h0 := hits.Value()
	run(regionCount)
	run(nationCount)
	if got := hits.Value() - h0; got != 2 {
		t.Fatalf("warm replays recorded %d hits, want 2", got)
	}

	// A write to region must drop the region entry but spare nation.
	i0 := invals.Value()
	if _, err := c.QueryAll(context.Background(),
		`INSERT INTO region VALUES (7, 'MU', 'hypothetical')`); err != nil {
		t.Fatal(err)
	}
	if got := invals.Value() - i0; got != 1 {
		t.Fatalf("INSERT invalidated %d entries, want exactly 1 (the region result)", got)
	}

	// The region query re-executes and sees the insert; nation still replays.
	h1 := hits.Value()
	if after := run(regionCount); after != before+1 {
		t.Fatalf("region count after INSERT = %d, want %d (stale replay?)", after, before+1)
	}
	run(nationCount)
	if got := hits.Value() - h1; got != 1 {
		t.Fatalf("post-write queries recorded %d hits, want 1 (nation only)", got)
	}
}

// TestServerMetrics spot-checks the serving-layer counters.
func TestServerMetrics(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})

	conns := obsv.Default.Counter("bufferdbd_connections_total")
	adhoc := obsv.Default.Counter(`bufferdbd_queries_total{source="adhoc"}`)
	bytesSent := obsv.Default.Counter("bufferdbd_bytes_sent_total")
	c0, a0, b0 := conns.Value(), adhoc.Value(), bytesSent.Value()

	c := dial(t, addr, client.Config{MaxConns: 1})
	if _, err := c.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation"); err != nil {
		t.Fatal(err)
	}
	if conns.Value()-c0 != 1 {
		t.Fatalf("connections delta = %d", conns.Value()-c0)
	}
	if adhoc.Value()-a0 != 1 {
		t.Fatalf("adhoc queries delta = %d", adhoc.Value()-a0)
	}
	if bytesSent.Value() == b0 {
		t.Fatal("bytes sent did not move")
	}
	var sb strings.Builder
	if err := bufferdb.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bufferdbd_connections_total") {
		t.Fatal("serving metrics missing from the registry export")
	}
}

// TestOptionConformanceOverWire asserts the satellite query options —
// force-join, buffer size, per-query memory budget, admission wait — are
// applied server-side with the same semantics as the embedded API: valid
// values change execution without changing results, invalid values are
// rejected with the server's validation errors, and budget overruns come
// back typed.
func TestOptionConformanceOverWire(t *testing.T) {
	db := newDB(t, bufferdb.Options{})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{})

	join := `SELECT o_orderpriority, COUNT(*) FROM lineitem, orders
	 WHERE l_orderkey = o_orderkey GROUP BY o_orderpriority ORDER BY o_orderpriority`
	want, err := db.Query(context.Background(), join)
	if err != nil {
		t.Fatalf("local join: %v", err)
	}
	ref := resultString(want.Columns, want.Rows)

	// Every join method and an explicit vector buffer size must produce
	// the embedded engine's exact result.
	for _, opt := range []struct {
		name string
		o    client.Option
	}{
		{"hash", client.WithForceJoin("hash")},
		{"nestloop", client.WithForceJoin("nestloop")},
		{"merge", client.WithForceJoin("merge")},
		{"bufsize", client.WithBufferSize(64)},
	} {
		res, err := c.QueryAll(context.Background(), join, opt.o)
		if err != nil {
			t.Fatalf("%s: %v", opt.name, err)
		}
		if got := resultString(res.Columns, res.Rows); got != ref {
			t.Fatalf("%s: result diverged from embedded engine:\n%s\nwant:\n%s", opt.name, got, ref)
		}
	}

	// Server-side validation: bogus join method and negative sizes are
	// rejected before execution, as CodeQuery with the server's message.
	rejections := []struct {
		name string
		o    client.Option
		msg  string
	}{
		{"bogus join", client.WithForceJoin("bogus"), "valid: hash, nestloop, merge"},
		{"negative buffer", client.WithBufferSize(-1), "negative buffer size"},
		{"negative budget", client.WithMemoryBudget(-1), "negative memory budget"},
		{"negative wait", client.WithAdmissionWait(-time.Millisecond), "negative admission wait"},
	}
	for _, rj := range rejections {
		_, err := c.QueryAll(context.Background(), join, rj.o)
		var serr *client.ServerError
		if !errors.As(err, &serr) || serr.Code != wire.CodeQuery {
			t.Fatalf("%s: got %v, want CodeQuery ServerError", rj.name, err)
		}
		if !strings.Contains(err.Error(), rj.msg) {
			t.Fatalf("%s: message %q does not mention %q", rj.name, err, rj.msg)
		}
	}

	// A per-query budget (not a server-wide limit) must trip typed, and
	// release everything it tracked.
	_, err = c.QueryAll(context.Background(), join, client.WithMemoryBudget(512))
	if !errors.Is(err, bufferdb.ErrMemoryBudgetExceeded) {
		t.Fatalf("tiny budget: got %v, want ErrMemoryBudgetExceeded", err)
	}
	if db.TrackedBytes() != 0 {
		t.Fatalf("tracked bytes after per-query OOM: %d", db.TrackedBytes())
	}

	// A generous budget on the same query succeeds with the same rows.
	res, err := c.QueryAll(context.Background(), join, client.WithMemoryBudget(128<<20))
	if err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	if got := resultString(res.Columns, res.Rows); got != ref {
		t.Fatalf("budgeted run diverged from embedded engine")
	}
}

// TestAdmissionWaitOverWire asserts the per-query admission wait crosses
// the wire: with the only slot held, a short wait sheds as ErrServerBusy
// in roughly the requested time instead of queueing indefinitely.
func TestAdmissionWaitOverWire(t *testing.T) {
	db := newDB(t, bufferdb.Options{
		Admission: bufferdb.AdmissionConfig{MaxConcurrent: 1, MaxQueued: 4, WaitTimeout: time.Minute},
	})
	_, addr := startServer(t, server.Config{DB: db, FaultHook: slowHook, BatchRows: 32})
	holder := dial(t, addr, client.Config{})
	c := dial(t, addr, client.Config{})

	// Occupy the single slot with a throttled stream.
	rows, err := holder.Query(context.Background(), slowQuery)
	if err != nil {
		t.Fatalf("holder query: %v", err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("holder stream produced no rows: %v", rows.Err())
	}

	start := time.Now()
	_, err = c.QueryAll(context.Background(),
		"SELECT COUNT(*) FROM nation", client.WithAdmissionWait(50*time.Millisecond))
	if !errors.Is(err, bufferdb.ErrServerBusy) {
		t.Fatalf("got %v, want ErrServerBusy", err)
	}
	var serr *client.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.CodeBusy {
		t.Fatalf("busy error not typed over wire: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("admission wait override ignored; waited %v", waited)
	}

	// Release the slot; the same query now succeeds with the same option.
	rows.Close()
	res, err := c.QueryAll(context.Background(),
		"SELECT COUNT(*) FROM nation", client.WithAdmissionWait(50*time.Millisecond))
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(25) {
		t.Fatalf("unexpected result: %v", res.Rows)
	}
}
