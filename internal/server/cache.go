package server

import (
	"container/list"
	"sync"

	"bufferdb"
)

// stmtOverheadBytes is the flat cost charged per cached prepared statement
// on top of its SQL text: the planned tree, schema and bookkeeping. Plans
// here are small (tens of operator nodes); the estimate errs high so the
// cache competes honestly with executing queries for the memory limit.
const stmtOverheadBytes = 32 << 10

// stmtCache is a shared LRU of prepared statements keyed by SQL text plus
// the plan-shaping options (see wire.QueryOpts.CacheKey). Sessions prepare
// through it so N clients preparing the same hot statement plan it once;
// bufferdb.Stmt is safe for concurrent use, so one entry serves concurrent
// executions. Every entry charges the database's MemoryLimit through
// ReserveMemory; when the reservation is refused the statement is handed
// out uncached rather than failing the prepare.
type stmtCache struct {
	db  *bufferdb.DB
	max int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type stmtEntry struct {
	key     string
	stmt    *bufferdb.Stmt
	release func()
}

// newStmtCache builds a cache bounded to max entries; max <= 0 disables
// caching (get always builds).
func newStmtCache(db *bufferdb.DB, max int) *stmtCache {
	return &stmtCache{db: db, max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// get returns the cached statement for key, building and inserting it on a
// miss. Concurrent misses on the same key may both build; the second insert
// wins and the loser's plan is simply garbage (never double-charged,
// because only the inserted entry holds a reservation).
func (c *stmtCache) get(key string, build func() (*bufferdb.Stmt, error)) (*bufferdb.Stmt, error) {
	if c.max <= 0 {
		return build()
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		st := el.Value.(*stmtEntry).stmt
		c.mu.Unlock()
		metricCache("stmt", "hits").Inc()
		return st, nil
	}
	c.mu.Unlock()
	metricCache("stmt", "misses").Inc()

	st, err := build()
	if err != nil {
		return nil, err
	}
	release, err := c.db.ReserveMemory("stmt-cache", int64(len(key))+stmtOverheadBytes)
	if err != nil {
		// The memory limit is saturated: serve the statement uncached.
		return st, nil
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Lost a race with a concurrent prepare; keep the winner.
		cached := el.Value.(*stmtEntry).stmt
		c.mu.Unlock()
		release()
		return cached, nil
	}
	c.entries[key] = c.order.PushFront(&stmtEntry{key: key, stmt: st, release: release})
	var evicted []*stmtEntry
	for c.order.Len() > c.max {
		back := c.order.Back()
		e := back.Value.(*stmtEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		evicted = append(evicted, e)
	}
	c.mu.Unlock()
	for _, e := range evicted {
		e.release()
		metricCache("stmt", "evictions").Inc()
	}
	return st, nil
}

// close releases every reservation; the cache is unusable afterwards.
func (c *stmtCache) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		el.Value.(*stmtEntry).release()
	}
	c.entries = map[string]*list.Element{}
	c.order.Init()
}

// cachedResult is one result cache entry: the column header plus the
// already-encoded row-batch frames, ready to replay to any client. Batches
// are immutable once stored, so an entry may be served concurrently with
// (or after) its own eviction.
type cachedResult struct {
	cols    []string
	batches [][]byte
	rows    uint64
	size    int64
	done    bool // stream reached its TDone frame; only then is it cacheable
	release func()
	// tables is the sorted base-table set the query read — the invalidation
	// tag: a committed INSERT into one of them drops this entry, while
	// entries over untouched tables survive. nil means the set is unknown
	// (the SQL did not parse as a plain SELECT) and the entry conservatively
	// depends on everything.
	tables []string
}

// dependsOn reports whether the entry must be dropped when table is written.
func (r *cachedResult) dependsOn(table string) bool {
	if r.tables == nil {
		return true
	}
	for _, t := range r.tables {
		if t == table {
			return true
		}
	}
	return false
}

// resultCache is the opt-in bounded reuse cache for repeated identical
// read-only queries (every statement the engine accepts is read-only). It
// stores encoded batches keyed like the statement cache, bounded both per
// entry and in total, with every byte charged against the database's
// MemoryLimit.
type resultCache struct {
	db       *bufferdb.DB
	budget   int64 // total encoded bytes; <= 0 disables
	maxEntry int64 // largest single result worth caching

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List
	total   int64
	// epoch counts invalidations (whole-cache and per-table alike). A query
	// whose table set is unknown snapshots it before executing and put drops
	// results from an older epoch: a SELECT that started before a write
	// committed but finished after the invalidation must not park its
	// pre-write result in the cache. Queries with a known table set are
	// validated more precisely, against the database's per-table write
	// epochs — the same epochs the semantic reuse cache keys on.
	epoch uint64
}

func newResultCache(db *bufferdb.DB, budget, maxEntry int64) *resultCache {
	if maxEntry <= 0 {
		maxEntry = budget / 8
	}
	if maxEntry > budget {
		// An entry larger than the whole budget could never be evicted down
		// to budget (put keeps at least one entry resident).
		maxEntry = budget
	}
	return &resultCache{
		db: db, budget: budget, maxEntry: maxEntry,
		entries: map[string]*list.Element{}, order: list.New(),
	}
}

func (c *resultCache) enabled() bool { return c.budget > 0 }

// get returns the entry for key, bumping its recency.
func (c *resultCache) get(key string) (*cachedResult, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		metricCache("result", "misses").Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	metricCache("result", "hits").Inc()
	return el.Value.(*resultKeyed).res, true
}

type resultKeyed struct {
	key string
	res *cachedResult
}

// writeEpoch returns the current invalidation epoch. Callers snapshot it
// before executing a query and hand it back to put.
func (c *resultCache) writeEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// put inserts a freshly-streamed result, evicting least-recently-used
// entries until the budget holds. Results over the per-entry cap, that the
// memory limit refuses, or whose execution started before a write that may
// affect them are dropped silently. Staleness is judged per table when the
// entry's table set is known: snapshot holds the per-table write epochs (from
// db.TableEpochs, shared with the semantic reuse cache) taken before the
// query executed, and a mismatch against db's current epochs means a write
// to a referenced table committed mid-flight. Entries with an unknown table
// set fall back to the cache-wide epoch (from writeEpoch).
func (c *resultCache) put(key string, res *cachedResult, epoch uint64, snapshot map[string]uint64, db *bufferdb.DB) {
	if !c.enabled() || res.size > c.maxEntry {
		return
	}
	release, err := c.db.ReserveMemory("result-cache", res.size)
	if err != nil {
		return
	}
	res.release = release

	c.mu.Lock()
	stale := false
	if res.tables == nil {
		stale = epoch != c.epoch
	} else {
		for t, e := range snapshot {
			if db.TableEpoch(t) != e {
				stale = true
				break
			}
		}
	}
	if stale {
		// A write committed while this query ran; its result may predate it.
		c.mu.Unlock()
		release()
		return
	}
	if _, ok := c.entries[key]; ok {
		// A concurrent execution already cached this key.
		c.mu.Unlock()
		release()
		return
	}
	c.entries[key] = c.order.PushFront(&resultKeyed{key: key, res: res})
	c.total += res.size
	var evicted []*cachedResult
	for c.total > c.budget && c.order.Len() > 1 {
		back := c.order.Back()
		e := back.Value.(*resultKeyed)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.total -= e.res.size
		evicted = append(evicted, e.res)
	}
	c.mu.Unlock()
	for _, r := range evicted {
		r.release()
		metricCache("result", "evictions").Inc()
	}
}

// invalidateTable drops every entry that read table (plus entries whose
// table set is unknown); entries over untouched tables survive. The
// cache-wide epoch still advances so in-flight unknown-table results are
// refused by put — known-table results in flight are judged precisely
// against the database's per-table epochs instead.
func (c *resultCache) invalidateTable(table string) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	c.epoch++
	var dropped []*cachedResult
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		e, ok := el.Value.(*resultKeyed)
		if !ok || !e.res.dependsOn(table) {
			continue
		}
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.total -= e.res.size
		dropped = append(dropped, e.res)
	}
	c.mu.Unlock()
	for _, r := range dropped {
		if r.release != nil {
			r.release()
		}
		metricCache("result", "invalidations").Inc()
	}
}

// invalidateAll drops every entry — called after a write commits whose
// target could not be determined, because any cached result may now be
// stale. Coarse, but the fallback path; targeted writes go through
// invalidateTable.
func (c *resultCache) invalidateAll() {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	c.epoch++
	var dropped []*cachedResult
	for el := c.order.Front(); el != nil; el = el.Next() {
		if e, ok := el.Value.(*resultKeyed); ok {
			dropped = append(dropped, e.res)
		}
	}
	c.entries = map[string]*list.Element{}
	c.order.Init()
	c.total = 0
	c.mu.Unlock()
	for _, r := range dropped {
		if r.release != nil {
			r.release()
		}
		metricCache("result", "invalidations").Inc()
	}
}

// close releases every reservation; the cache is unusable afterwards.
func (c *resultCache) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		if e, ok := el.Value.(*resultKeyed); ok && e.res.release != nil {
			e.res.release()
		}
	}
	c.entries = map[string]*list.Element{}
	c.order.Init()
	c.total = 0
}
