package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"bufferdb"
	sqlfe "bufferdb/internal/sql"
	"bufferdb/internal/wire"
)

// batchBytes flushes a RowBatch frame early once its payload reaches this
// size, regardless of the row count, so wide rows don't build huge frames.
const batchBytes = 64 << 10

// handshakeTimeout bounds how long a fresh connection may sit silent
// before its Hello arrives.
const handshakeTimeout = 10 * time.Second

// frame is one decoded incoming frame.
type frame struct {
	t       wire.Type
	payload []byte
}

// session serves one connection. All writes happen on the session
// goroutine; a dedicated reader goroutine decodes incoming frames into the
// frames channel so the session can notice Cancel frames and disconnects
// while a result is streaming.
type session struct {
	srv  *Server
	conn net.Conn
	bw   *bufio.Writer

	// frames delivers decoded client frames; the reader goroutine closes
	// it on read error or disconnect.
	frames chan frame

	// stmts maps session-local statement ids to their prepared handles.
	// The handles themselves may be shared through the server's LRU.
	stmts  map[uint64]*prepared
	nextID uint64
}

// prepared is a session's handle on a prepared statement.
type prepared struct {
	sql  string
	opts wire.QueryOpts
	stmt *bufferdb.Stmt
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		srv:    s,
		conn:   conn,
		bw:     bufio.NewWriterSize(conn, 32<<10),
		frames: make(chan frame, 1),
		stmts:  map[uint64]*prepared{},
	}
}

// readLoop decodes frames off the connection until it fails, then closes
// the frames channel — which the session observes as a disconnect.
func (ss *session) readLoop() {
	defer close(ss.frames)
	for {
		t, p, err := wire.ReadFrame(ss.conn)
		if err != nil {
			return
		}
		ss.frames <- frame{t, p}
	}
}

// run drives the session: handshake, then one request at a time until
// disconnect, protocol error or server shutdown.
func (ss *session) run() {
	defer func() {
		ss.conn.Close()
		// Unblock the reader if it is parked on a send.
		for range ss.frames {
		}
	}()
	go ss.readLoop()

	if err := ss.handshake(); err != nil {
		ss.srv.logf("server: %s: handshake: %v", ss.conn.RemoteAddr(), err)
		return
	}

	for {
		select {
		case <-ss.srv.ctx.Done():
			_ = ss.sendError(wire.CodeShutdown, "server shutting down")
			return
		case f, ok := <-ss.frames:
			if !ok {
				return
			}
			if err := ss.dispatch(f); err != nil {
				ss.srv.logf("server: %s: %v", ss.conn.RemoteAddr(), err)
				return
			}
		}
	}
}

// handshake expects Hello as the very first frame and answers HelloOK.
func (ss *session) handshake() error {
	_ = ss.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var f frame
	var ok bool
	select {
	case f, ok = <-ss.frames:
		if !ok {
			return fmt.Errorf("connection closed before Hello")
		}
	case <-ss.srv.ctx.Done():
		return context.Cause(ss.srv.ctx)
	}
	_ = ss.conn.SetReadDeadline(time.Time{})
	if f.t != wire.THello {
		_ = ss.sendError(wire.CodeProtocol, fmt.Sprintf("expected Hello, got %s", f.t))
		return fmt.Errorf("first frame was %s", f.t)
	}
	r := wire.NewReader(f.payload)
	magic, version := r.U32(), r.U8()
	if err := r.Err(); err != nil {
		_ = ss.sendError(wire.CodeProtocol, "malformed Hello")
		return err
	}
	if magic != wire.Magic {
		_ = ss.sendError(wire.CodeProtocol, "bad magic")
		return fmt.Errorf("bad magic 0x%08x", magic)
	}
	if version != wire.Version {
		_ = ss.sendError(wire.CodeProtocol, fmt.Sprintf("unsupported protocol version %d", version))
		return fmt.Errorf("unsupported version %d", version)
	}
	var b wire.Builder
	b.U8(wire.Version)
	b.String(ss.srv.cfg.Info)
	return ss.send(wire.THelloOK, b.Bytes())
}

// dispatch handles one request frame. A nil return keeps the session
// alive; an error tears the connection down (protocol violations, dead
// sockets).
func (ss *session) dispatch(f frame) error {
	switch f.t {
	case wire.TQuery:
		r := wire.NewReader(f.payload)
		opts := r.Opts()
		sql := r.String()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed Query")
			return err
		}
		return ss.runAdhoc(sql, opts)

	case wire.TPrepare:
		r := wire.NewReader(f.payload)
		opts := r.Opts()
		sql := r.String()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed Prepare")
			return err
		}
		return ss.prepare(sql, opts)

	case wire.TExecute:
		r := wire.NewReader(f.payload)
		id := r.U64()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed Execute")
			return err
		}
		return ss.execute(id)

	case wire.TCloseStmt:
		r := wire.NewReader(f.payload)
		id := r.U64()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed CloseStmt")
			return err
		}
		delete(ss.stmts, id)
		return nil

	case wire.TTables:
		return ss.tables(f.payload)

	case wire.TCancel:
		// A cancel that raced the end of its stream; nothing to abort.
		return nil

	default:
		_ = ss.sendError(wire.CodeProtocol, fmt.Sprintf("unexpected %s frame", f.t))
		return fmt.Errorf("unexpected %s frame", f.t)
	}
}

// prepare plans a statement and hands back its session-local id.
func (ss *session) prepare(sql string, opts wire.QueryOpts) error {
	var fi *bufferdb.FaultInjector
	if ss.srv.cfg.FaultHook != nil {
		fi = ss.srv.cfg.FaultHook(sql)
	}
	st, err := ss.srv.buildStmt(sql, opts, fi)
	if err != nil {
		return ss.sendQueryError(err)
	}
	ss.nextID++
	id := ss.nextID
	ss.stmts[id] = &prepared{sql: sql, opts: opts, stmt: st}
	var b wire.Builder
	b.U64(id)
	return ss.send(wire.TPrepared, b.Bytes())
}

// execute runs a prepared statement by id.
func (ss *session) execute(id uint64) error {
	ps, ok := ss.stmts[id]
	if !ok {
		return ss.sendError(wire.CodeUnknownStmt, fmt.Sprintf("unknown statement id %d", id))
	}
	metricQueries("prepared").Inc()
	metricInFlight().Add(1)
	defer metricInFlight().Add(-1)

	qctx, qcancel := context.WithCancel(ss.srv.ctx)
	defer qcancel()
	rows, err := ps.stmt.QueryStream(qctx)
	if err != nil {
		return ss.sendQueryError(err)
	}
	return ss.stream(qcancel, rows, nil)
}

// runAdhoc serves a Query frame: through the result cache when it is
// enabled and the statement qualifies, else by planning and executing.
func (ss *session) runAdhoc(sql string, opts wire.QueryOpts) error {
	var fi *bufferdb.FaultInjector
	if ss.srv.cfg.FaultHook != nil {
		fi = ss.srv.cfg.FaultHook(sql)
	}

	// A write must execute every time (replaying a cached INSERT would skip
	// the insert) and, once committed, makes cached reads of its target
	// table stale.
	isWrite := sqlfe.IsInsert(sql)
	cacheable := ss.srv.results.enabled() && !opts.NoResultCache && fi == nil && !isWrite
	key := opts.CacheKey(sql)
	db, err := ss.srv.dbFor(opts.Slice)
	if err != nil {
		return ss.sendQueryError(err)
	}
	// Tag the result with the tables it reads and snapshot their write
	// epochs before the query executes: if an INSERT into one of them
	// commits while this query streams, put refuses the stale result —
	// results over untouched tables are unaffected. An unparseable
	// statement keeps a nil tag (depends on everything) and falls back to
	// the cache-wide epoch.
	var tables []string
	var snapshot map[string]uint64
	if cacheable {
		if tabs, ok := sqlfe.Tables(sql); ok {
			tables = tabs
			snapshot = db.TableEpochs(tabs)
		}
	}
	epoch := ss.srv.results.writeEpoch()
	if cacheable {
		if res, ok := ss.srv.results.get(key); ok {
			metricQueries("cached").Inc()
			return ss.replay(res)
		}
	}

	metricQueries("adhoc").Inc()
	metricInFlight().Add(1)
	defer metricInFlight().Add(-1)

	qctx, qcancel := context.WithCancel(ss.srv.ctx)
	defer qcancel()
	qopts, err := queryOptions(opts, fi)
	if err != nil {
		return ss.sendQueryError(err)
	}
	rows, err := db.QueryStream(qctx, sql, qopts...)
	if err != nil {
		return ss.sendQueryError(err)
	}
	if isWrite {
		// The insert committed inside QueryStream; cached reads of its
		// target are stale. (The facade already bumped the table's write
		// epoch and invalidated the semantic reuse cache.)
		if target, ok := sqlfe.InsertTarget(sql); ok {
			ss.srv.results.invalidateTable(target)
		} else {
			ss.srv.results.invalidateAll()
		}
	}
	var collect *cachedResult
	if cacheable {
		collect = &cachedResult{tables: tables}
	}
	err = ss.stream(qcancel, rows, collect)
	if err == nil && collect != nil && collect.complete() {
		ss.srv.results.put(key, collect, epoch, snapshot, db)
	}
	return err
}

// complete reports whether a collected result streamed all the way to its
// TDone frame. Checking the done flag — set only on the success path —
// keeps canceled, mid-stream-errored and disconnected streams (whose
// column header was already collected) out of the result cache.
func (r *cachedResult) complete() bool { return r != nil && r.done }

// stream drives a Rows cursor onto the wire: Columns, RowBatch*, then Done
// or a terminal Error frame. While streaming, a watcher goroutine owns the
// incoming frame channel so a Cancel frame — or the channel closing on
// disconnect — cancels the query context, which frees its admission slot
// and returns its tracked memory. The returned error is session-fatal;
// query failures are reported to the client and return nil.
func (ss *session) stream(qcancel context.CancelFunc, rows *bufferdb.Rows, collect *cachedResult) error {
	defer rows.Close()

	// Watch for Cancel / disconnect / stray frames while we stream.
	stop := make(chan struct{})
	watch := make(chan watchEvent, 1)
	go func() {
		select {
		case f, ok := <-ss.frames:
			if !ok {
				watch <- watchDisconnect
			} else if f.t == wire.TCancel {
				watch <- watchCancel
			} else {
				watch <- watchProtocol
			}
			qcancel()
		case <-stop:
			watch <- watchNone
		}
	}()
	settle := func() watchEvent {
		close(stop)
		return <-watch
	}

	cols := rows.Columns()
	var b wire.Builder
	b.U32(uint32(len(cols)))
	for _, c := range cols {
		b.String(c)
	}
	if err := ss.send(wire.TColumns, b.Bytes()); err != nil {
		settle()
		return err
	}
	if collect != nil {
		collect.cols = append([]string(nil), cols...)
	}

	dest := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range dest {
		ptrs[i] = &dest[i]
	}

	var total uint64
	var batch wire.Builder
	var inBatch uint32
	flush := func() error {
		if inBatch == 0 {
			return nil
		}
		payload := batch.Bytes()
		binary.BigEndian.PutUint32(payload[:4], inBatch)
		if collect != nil {
			if collect.size += int64(len(payload)); collect.size > ss.srv.results.maxEntry {
				collect.cols = nil // too big to cache; stop collecting
				collect.batches = nil
				collect = nil
			} else {
				collect.batches = append(collect.batches, append([]byte(nil), payload...))
				collect.rows += uint64(inBatch)
			}
		}
		err := ss.send(wire.TRowBatch, payload)
		batch.Reset()
		inBatch = 0
		return err
	}
	batch.U32(0) // row-count placeholder, patched in flush

	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			// Scan of *any never fails on engine-produced rows; treat a
			// failure as a query error.
			settle()
			return ss.sendQueryError(err)
		}
		for _, v := range dest {
			if err := batch.Value(v); err != nil {
				settle()
				return ss.sendQueryError(err)
			}
		}
		inBatch++
		total++
		if int(inBatch) >= ss.srv.cfg.BatchRows || batch.Len() >= batchBytes {
			if err := flush(); err != nil {
				settle()
				return err
			}
			batch.U32(0)
		}
	}

	ev := settle()
	switch ev {
	case watchDisconnect:
		// No one is listening; just unwind (rows.Close in the defer).
		return fmt.Errorf("client disconnected mid-stream")
	case watchProtocol:
		_ = ss.sendError(wire.CodeProtocol, "frame other than Cancel during result stream")
		return fmt.Errorf("frame other than Cancel during result stream")
	}

	if err := rows.Err(); err != nil {
		return ss.sendQueryError(err)
	}
	if ev == watchCancel {
		// The query finished before the cancel landed; report the cancel
		// anyway — the client stopped caring about this result.
		return ss.sendError(wire.CodeCanceled, "query canceled")
	}
	if err := flush(); err != nil {
		return err
	}
	if err := rows.Close(); err != nil {
		return ss.sendQueryError(err)
	}
	if collect != nil {
		collect.done = true
	}
	var done wire.Builder
	done.U64(total)
	return ss.send(wire.TDone, done.Bytes())
}

// watchEvent is what the stream watcher observed.
type watchEvent int

const (
	watchNone watchEvent = iota
	watchCancel
	watchDisconnect
	watchProtocol
)

// replay streams a cached result: header, stored batches, done.
func (ss *session) replay(res *cachedResult) error {
	var b wire.Builder
	b.U32(uint32(len(res.cols)))
	for _, c := range res.cols {
		b.String(c)
	}
	if err := ss.send(wire.TColumns, b.Bytes()); err != nil {
		return err
	}
	for _, batch := range res.batches {
		if err := ss.send(wire.TRowBatch, batch); err != nil {
			return err
		}
	}
	var done wire.Builder
	done.U64(res.rows)
	return ss.send(wire.TDone, done.Bytes())
}

// tables answers a Tables frame from the catalog. An empty payload (the
// original protocol) targets the default database; a payload carries the
// same slice selector QueryOpts uses (0 = default, k = slice k-1).
func (ss *session) tables(payload []byte) error {
	var slice int32
	if len(payload) > 0 {
		r := wire.NewReader(payload)
		slice = int32(r.U32())
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed Tables")
			return err
		}
	}
	db, err := ss.srv.dbFor(slice)
	if err != nil {
		return ss.sendQueryError(err)
	}
	names := db.Tables()
	var b wire.Builder
	b.U32(uint32(len(names)))
	for _, n := range names {
		rows, err := db.RowCount(n)
		if err != nil {
			rows = 0
		}
		b.String(n)
		b.U64(uint64(rows))
	}
	return ss.send(wire.TTablesOK, b.Bytes())
}

// send writes one frame and flushes it. Each send arms a fresh write
// deadline so a client that stops reading unwinds the session (freeing its
// admission slot and tracked memory) instead of blocking it forever.
func (ss *session) send(t wire.Type, payload []byte) error {
	if d := ss.srv.cfg.WriteTimeout; d > 0 {
		_ = ss.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := wire.WriteFrame(ss.bw, t, payload); err != nil {
		return err
	}
	if err := ss.bw.Flush(); err != nil {
		return err
	}
	metricBytesSent().Add(uint64(len(payload) + 5))
	return nil
}

// sendQueryError reports a failed statement with its stable code; the
// session stays alive.
func (ss *session) sendQueryError(err error) error {
	return ss.sendError(ss.srv.errorCode(err), err.Error())
}

// sendError writes a terminal Error frame and counts it.
func (ss *session) sendError(code wire.Code, msg string) error {
	metricQueryErrors(code).Inc()
	var b wire.Builder
	b.U16(uint16(code))
	b.String(msg)
	return ss.send(wire.TError, b.Bytes())
}
