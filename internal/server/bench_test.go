package server_test

import (
	"context"
	"runtime"
	"testing"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/server"
)

// benchQuery has enough plan surface (join + aggregate) that planning cost
// is visible next to execution at benchmark scale, making the prepared-
// reuse comparison meaningful.
const benchQuery = `SELECT l_returnflag, COUNT(*), SUM(l_extendedprice) FROM lineitem, orders
 WHERE l_orderkey = o_orderkey AND l_quantity > 10 GROUP BY l_returnflag ORDER BY l_returnflag`

func benchHarness(b *testing.B, cfg server.Config) string {
	db := newDB(b, bufferdb.Options{})
	cfg.DB = db
	_, addr := startServer(b, cfg)
	return addr
}

// BenchmarkServerThroughput measures end-to-end queries/sec through the
// full network path — wire encoding, session dispatch, admission, engine,
// row streaming — with one client connection per worker.
func BenchmarkServerThroughput(b *testing.B) {
	addr := benchHarness(b, server.Config{})
	c := dial(b, addr, client.Config{MaxConns: runtime.GOMAXPROCS(0)})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.QueryAll(context.Background(), benchQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPreparedVsAdHoc isolates what the server-side reuse layers buy:
// ad-hoc queries plan on every request, prepared executions reuse the plan
// through the statement LRU, and the result cache skips execution outright.
func BenchmarkPreparedVsAdHoc(b *testing.B) {
	b.Run("adhoc", func(b *testing.B) {
		addr := benchHarness(b, server.Config{})
		c := dial(b, addr, client.Config{MaxConns: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.QueryAll(context.Background(), benchQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		addr := benchHarness(b, server.Config{})
		c := dial(b, addr, client.Config{MaxConns: 1})
		st := c.Prepare(benchQuery)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.QueryAll(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("result-cached", func(b *testing.B) {
		addr := benchHarness(b, server.Config{ResultCacheBytes: 8 << 20})
		c := dial(b, addr, client.Config{MaxConns: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.QueryAll(context.Background(), benchQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}
