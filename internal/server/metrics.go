package server

import (
	"fmt"

	"bufferdb/internal/obsv"
	"bufferdb/internal/wire"
)

// The serving layer feeds the same process-wide registry the engine does,
// so one /metrics scrape shows the whole stack:
//
//	bufferdbd_connections_total            connections accepted
//	bufferdbd_connections_open             sessions live now
//	bufferdbd_queries_in_flight            statements executing now
//	bufferdbd_queries_total{source="..."}  adhoc | prepared | cached
//	bufferdbd_bytes_sent_total             result-stream payload bytes
//	bufferdbd_query_errors_total{code=".."} terminal error frames by class
//	bufferdbd_stmt_cache_{hits,misses,evictions}_total
//	bufferdbd_result_cache_{hits,misses,evictions}_total

func metricConnections() *obsv.Counter {
	return obsv.Default.Counter("bufferdbd_connections_total")
}

func metricConnsOpen() *obsv.Gauge {
	return obsv.Default.Gauge("bufferdbd_connections_open")
}

func metricInFlight() *obsv.Gauge {
	return obsv.Default.Gauge("bufferdbd_queries_in_flight")
}

// metricQueries counts served statements by source: "adhoc" (Query frame),
// "prepared" (Execute frame), "cached" (served from the result cache).
func metricQueries(source string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdbd_queries_total{source=%q}", source))
}

func metricBytesSent() *obsv.Counter {
	return obsv.Default.Counter("bufferdbd_bytes_sent_total")
}

// metricQueryErrors counts terminal error frames by their stable code.
func metricQueryErrors(code wire.Code) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdbd_query_errors_total{code=%q}", code.String()))
}

func metricCache(cache, event string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdbd_%s_cache_%s_total", cache, event))
}
