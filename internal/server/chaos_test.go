package server_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/server"
	"bufferdb/internal/wire"
)

// The chaos-over-wire suite runs the fault-injection harness through the
// network path: faults fire inside operators on the server, and the tests
// assert the resource governor's typed sentinels survive frame encoding —
// errors.Is works on the client exactly as it does embedded — and that the
// daemon sheds the failed query completely (memory drained, session still
// usable).

const chaosWireQuery = `SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders
 WHERE l_orderkey = o_orderkey AND l_quantity > 5`

// faultSwitch is a FaultHook whose rule set tests swap per subtest.
type faultSwitch struct {
	mu    sync.Mutex
	build func() *bufferdb.FaultInjector
}

func (f *faultSwitch) hook(sql string) *bufferdb.FaultInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.build == nil || !strings.Contains(sql, "l_quantity > 5") {
		return nil
	}
	return f.build()
}

func (f *faultSwitch) set(build func() *bufferdb.FaultInjector) {
	f.mu.Lock()
	f.build = build
	f.mu.Unlock()
}

// chaosHarness starts one throttled server + client pair for the suite.
func chaosHarness(t *testing.T) (*bufferdb.DB, *client.Client, *faultSwitch) {
	t.Helper()
	db := newDB(t, bufferdb.Options{})
	fs := &faultSwitch{}
	_, addr := startServer(t, server.Config{DB: db, FaultHook: fs.hook})
	return db, dial(t, addr, client.Config{MaxConns: 2}), fs
}

// assertWireClean asserts the failed statement left nothing behind and the
// same session still answers.
func assertWireClean(t *testing.T, db *bufferdb.DB, c *client.Client) {
	t.Helper()
	waitFor(t, "tracked bytes drain", func() bool { return db.TrackedBytes() == 0 })
	if _, err := c.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation"); err != nil {
		t.Fatalf("session unusable after fault: %v", err)
	}
}

// TestChaosOverWireErrorInjection injects plain operator errors at several
// sites and asserts they cross the wire as CodeQuery with the message
// intact, not misclassified as panics.
func TestChaosOverWireErrorInjection(t *testing.T) {
	db, c, fs := chaosHarness(t)
	for _, match := range []string{"Scan", "Join", "Aggregate"} {
		t.Run(match, func(t *testing.T) {
			m := match
			fs.set(func() *bufferdb.FaultInjector {
				return bufferdb.NewFaultInjector(1, bufferdb.Fault{Match: m, Kind: bufferdb.FaultError})
			})
			_, err := c.QueryAll(context.Background(), chaosWireQuery)
			var serr *client.ServerError
			if !errors.As(err, &serr) {
				t.Fatalf("want ServerError, got %v", err)
			}
			if serr.Code != wire.CodeQuery {
				t.Fatalf("injected error arrived as %s, want query", serr.Code)
			}
			if !strings.Contains(serr.Msg, "injected") {
				t.Fatalf("error message lost the injection marker: %q", serr.Msg)
			}
			if errors.Is(err, bufferdb.ErrQueryPanic) {
				t.Fatalf("plain injected error misclassified as panic: %v", err)
			}
			assertWireClean(t, db, c)
		})
	}
}

// TestChaosOverWirePanicInjection asserts a contained operator panic
// surfaces as CodePanic and errors.Is(err, ErrQueryPanic) still holds on
// the client side of the connection.
func TestChaosOverWirePanicInjection(t *testing.T) {
	db, c, fs := chaosHarness(t)
	fs.set(func() *bufferdb.FaultInjector {
		return bufferdb.NewFaultInjector(7, bufferdb.Fault{Match: "Scan", Kind: bufferdb.FaultPanic, After: 5})
	})
	_, err := c.QueryAll(context.Background(), chaosWireQuery)
	if !errors.Is(err, bufferdb.ErrQueryPanic) {
		t.Fatalf("want ErrQueryPanic across the wire, got %v", err)
	}
	var serr *client.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.CodePanic {
		t.Fatalf("panic error arrived without CodePanic: %v", err)
	}
	assertWireClean(t, db, c)
}

// TestChaosOverWireDeadline pairs latency injection with a client-set
// per-query timeout and asserts the deadline sentinel round-trips: both
// bufferdb.ErrDeadlineExceeded and context.DeadlineExceeded hold.
func TestChaosOverWireDeadline(t *testing.T) {
	db, c, fs := chaosHarness(t)
	fs.set(func() *bufferdb.FaultInjector {
		return bufferdb.NewFaultInjector(3, bufferdb.Fault{
			Match: "Scan", Kind: bufferdb.FaultLatency, Latency: time.Millisecond, Every: 1,
		})
	})
	_, err := c.QueryAll(context.Background(), chaosWireQuery,
		client.WithTimeout(30*time.Millisecond))
	if !errors.Is(err, bufferdb.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error lost context.DeadlineExceeded: %v", err)
	}
	assertWireClean(t, db, c)
}

// TestChaosOverWireBusyAndOOM asserts the remaining governor sentinels
// keep their identities across frames: admission shedding and memory
// budget overruns.
func TestChaosOverWireBusyAndOOM(t *testing.T) {
	// OOM: a dedicated server whose database can't hold the join build.
	db := newDB(t, bufferdb.Options{MemoryLimit: 32 << 10})
	_, addr := startServer(t, server.Config{DB: db})
	c := dial(t, addr, client.Config{})
	_, err := c.QueryAll(context.Background(), chaosWireQuery)
	if !errors.Is(err, bufferdb.ErrMemoryBudgetExceeded) {
		t.Fatalf("want ErrMemoryBudgetExceeded, got %v", err)
	}
	var serr *client.ServerError
	if !errors.As(err, &serr) || serr.Code != wire.CodeOOM {
		t.Fatalf("OOM error arrived without CodeOOM: %v", err)
	}
	assertWireClean(t, db, c)

	// Busy: a zero-queue single-slot server saturated by a held stream.
	db2 := newDB(t, bufferdb.Options{
		Admission: bufferdb.AdmissionConfig{MaxConcurrent: 1, MaxQueued: 0},
	})
	_, addr2 := startServer(t, server.Config{DB: db2, FaultHook: slowHook, BatchRows: 32})
	c2 := dial(t, addr2, client.Config{MaxConns: 2, BusyRetries: -1})
	rows, err := c2.Query(context.Background(), slowQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("holder stream empty: %v", rows.Err())
	}
	_, err = c2.QueryAll(context.Background(), "SELECT COUNT(*) FROM nation")
	if !errors.Is(err, bufferdb.ErrServerBusy) {
		t.Fatalf("want ErrServerBusy, got %v", err)
	}
	if !errors.As(err, &serr) || serr.Code != wire.CodeBusy {
		t.Fatalf("busy error arrived without CodeBusy: %v", err)
	}
	rows.Close()
	assertWireClean(t, db2, c2)
}
