// Package server is bufferdb's network serving layer: a TCP server
// speaking the internal/wire protocol over a resident *bufferdb.DB. Every
// session's statements run through the engine's existing resource governor
// — admission control, deadlines, memory budgets, panic containment — and
// the sentinel errors those layers produce cross the connection as stable
// typed error codes. The server adds the two reuse layers a long-lived
// daemon makes worthwhile: a shared LRU of prepared statements keyed by
// SQL text, and an opt-in bounded cache replaying encoded result streams
// for repeated identical read-only queries, both charged against the
// database's MemoryLimit.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bufferdb"
	"bufferdb/internal/wire"
)

// Config configures a Server. DB is the only required field.
type Config struct {
	// DB is the resident database every session queries.
	DB *bufferdb.DB

	// Slices maps hash-slice indices to their databases when this node
	// hosts replicas of several slices. DB stays the default target
	// (QueryOpts.Slice == 0); a request addressing slice k routes to
	// Slices[k], and slices absent from the map are rejected with a query
	// error so a coordinator/node placement mismatch fails loudly instead
	// of silently scanning the wrong rows. Nil means this node serves only
	// its default database.
	Slices map[int]*bufferdb.DB

	// StmtCacheEntries bounds the shared prepared-statement LRU. 0 selects
	// the default (64); negative disables the cache (every prepare plans).
	StmtCacheEntries int

	// ResultCacheBytes enables the result-reuse cache with a total budget
	// of encoded result bytes; 0 (the default) disables it — reuse of
	// whole results is opt-in.
	ResultCacheBytes int64
	// ResultCacheMaxEntry caps one cached result's encoded size
	// (0 = ResultCacheBytes/8).
	ResultCacheMaxEntry int64

	// BatchRows bounds the rows packed into one RowBatch frame
	// (0 = 256); frames also flush early at ~64 KiB of payload.
	BatchRows int

	// WriteTimeout bounds each outgoing frame write. A client that stops
	// reading mid-stream would otherwise park the session goroutine forever
	// on a full TCP buffer, holding its admission slot and tracked memory —
	// context cancellation cannot unblock a blocked conn.Write. 0 selects
	// the default (30s); negative disables the deadline.
	WriteTimeout time.Duration

	// Info is the free-form server identification echoed in HelloOK.
	Info string

	// Logf receives connection-level diagnostics; nil discards them.
	Logf func(format string, args ...any)

	// FaultHook, when set, attaches a fault injector to every statement
	// whose SQL it returns non-nil for. It exists so the chaos suite can
	// drive the fault-injection harness through the network path; nil in
	// production. Statements with an injector bypass both reuse caches.
	FaultHook func(sql string) *bufferdb.FaultInjector
}

// Server accepts connections and serves sessions until Shutdown.
type Server struct {
	cfg     Config
	db      *bufferdb.DB
	stmts   *stmtCache
	results *resultCache

	// ctx is canceled by Shutdown; every session context and in-flight
	// query context descends from it.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	wg sync.WaitGroup
}

// New builds a Server over a resident database.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	stmtEntries := cfg.StmtCacheEntries
	if stmtEntries == 0 {
		stmtEntries = 64
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 256
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:       cfg,
		db:        cfg.DB,
		stmts:     newStmtCache(cfg.DB, stmtEntries),
		results:   newResultCache(cfg.DB, cfg.ResultCacheBytes, cfg.ResultCacheMaxEntry),
		ctx:       ctx,
		cancel:    cancel,
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ErrServerClosed is returned by Serve after Shutdown, mirroring
// net/http.ErrServerClosed.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts sessions on l until Shutdown closes it. Like
// net/http.Server.Serve it blocks, returning ErrServerClosed on a clean
// shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		l.Close()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()

		metricConnections().Inc()
		metricConnsOpen().Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				metricConnsOpen().Add(-1)
				s.wg.Done()
			}()
			newSession(s, conn).run()
		}()
	}
}

// Shutdown stops accepting, cancels every in-flight query (which frees
// admission slots and drives tracked memory back to zero), and waits for
// sessions to drain. If ctx expires first, remaining connections are
// force-closed and Shutdown waits for their sessions to unwind before
// returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	// Cancel session + query contexts: blocked queries fail promptly and
	// sessions send a shutdown error frame before exiting.
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// Sessions are gone; return the cache reservations so an idle
	// post-shutdown process charges nothing against the memory limit.
	s.stmts.close()
	s.results.close()
	return err
}

// dbFor routes a request to its slice database: 0 is the default DB,
// k > 0 addresses slice k-1 from Config.Slices.
func (s *Server) dbFor(slice int32) (*bufferdb.DB, error) {
	if slice == 0 {
		return s.db, nil
	}
	idx := int(slice - 1)
	if db, ok := s.cfg.Slices[idx]; ok {
		return db, nil
	}
	return nil, fmt.Errorf("server: this node does not host slice %d", idx)
}

// buildStmt plans a statement with the wire options applied, going through
// the shared LRU when the options are cache-compatible. Statements carrying
// a timeout or a fault injector stay private to their session: the timeout
// is baked into the prepared options (it must not leak to other clients),
// and injectors are test instruments. The cache key includes the slice, so
// the same SQL prepared against two hosted slices yields two entries.
func (s *Server) buildStmt(sql string, o wire.QueryOpts, fi *bufferdb.FaultInjector) (*bufferdb.Stmt, error) {
	db, err := s.dbFor(o.Slice)
	if err != nil {
		return nil, err
	}
	build := func() (*bufferdb.Stmt, error) {
		opts, err := queryOptions(o, fi)
		if err != nil {
			return nil, err
		}
		return db.Prepare(sql, opts...)
	}
	if o.TimeoutMS != 0 || o.MemoryBudget != 0 || o.AdmissionWaitMS != 0 || fi != nil {
		return build()
	}
	return s.stmts.get(o.CacheKey(sql), build)
}

// queryOptions translates wire options into engine options. The engine
// name a client sent goes through the canonical parser, so a bad name is
// rejected at the protocol boundary with the valid set in the message
// instead of surfacing later from the planner.
func queryOptions(o wire.QueryOpts, fi *bufferdb.FaultInjector) ([]bufferdb.QueryOption, error) {
	var opts []bufferdb.QueryOption
	if o.Engine != "" {
		e, err := bufferdb.ParseEngine(o.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts, bufferdb.WithEngine(e))
	}
	if o.Parallelism != 0 {
		opts = append(opts, bufferdb.WithParallelism(int(o.Parallelism)))
	}
	if o.TimeoutMS > 0 {
		opts = append(opts, bufferdb.WithTimeout(time.Duration(o.TimeoutMS)*time.Millisecond))
	}
	if o.DisableRefinement {
		opts = append(opts, bufferdb.WithoutRefinement())
	}
	if o.ForceJoin != "" {
		switch o.ForceJoin {
		case "hash", "nestloop", "merge":
			opts = append(opts, bufferdb.WithForceJoin(o.ForceJoin))
		default:
			return nil, fmt.Errorf("server: %w %q (valid: hash, nestloop, merge)",
				bufferdb.ErrBadJoinMethod, o.ForceJoin)
		}
	}
	if o.BufferSize < 0 {
		return nil, fmt.Errorf("server: negative buffer size %d", o.BufferSize)
	}
	if o.BufferSize > 0 {
		opts = append(opts, bufferdb.WithBufferSize(int(o.BufferSize)))
	}
	if o.MemoryBudget < 0 {
		return nil, fmt.Errorf("server: negative memory budget %d", o.MemoryBudget)
	}
	if o.MemoryBudget > 0 {
		opts = append(opts, bufferdb.WithMemoryBudget(o.MemoryBudget))
	}
	if o.AdmissionWaitMS < 0 {
		return nil, fmt.Errorf("server: negative admission wait %dms", o.AdmissionWaitMS)
	}
	if o.AdmissionWaitMS > 0 {
		opts = append(opts, bufferdb.WithAdmissionWait(time.Duration(o.AdmissionWaitMS)*time.Millisecond))
	}
	if fi != nil {
		opts = append(opts, bufferdb.WithFaultInjector(fi))
	}
	return opts, nil
}

// errorCode classifies a query error into its stable wire code. The order
// matters: a deadline expiry also satisfies context cancellation, and a
// shutdown cancellation must not masquerade as a client cancel.
func (s *Server) errorCode(err error) wire.Code {
	switch {
	case errors.Is(err, bufferdb.ErrServerBusy):
		return wire.CodeBusy
	case errors.Is(err, bufferdb.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return wire.CodeDeadline
	case errors.Is(err, bufferdb.ErrMemoryBudgetExceeded):
		return wire.CodeOOM
	case errors.Is(err, bufferdb.ErrQueryPanic):
		return wire.CodePanic
	case errors.Is(err, context.Canceled):
		if s.ctx.Err() != nil {
			return wire.CodeShutdown
		}
		return wire.CodeCanceled
	default:
		return wire.CodeQuery
	}
}

// Addr is a convenience for tests: the first listener's address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	for l := range s.listeners {
		return l.Addr()
	}
	return nil
}

// String identifies the server in logs.
func (s *Server) String() string {
	return fmt.Sprintf("bufferdbd(stmt-cache=%d, result-cache=%dB)",
		s.stmts.max, s.results.budget)
}
