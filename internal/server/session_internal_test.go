package server

import (
	"context"
	"net"
	"testing"
	"time"

	"bufferdb"
	"bufferdb/internal/wire"
)

// pipeSession runs a session over an in-memory net.Pipe. The pipe is
// unbuffered, so every server write blocks until the test reads it — which
// makes "the client walked away mid-stream" exactly reproducible instead
// of a race against kernel socket buffers.
func pipeSession(t *testing.T, cfg Config) net.Conn {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cli, srvEnd := net.Pipe()
	_ = cli.SetDeadline(time.Now().Add(30 * time.Second))
	done := make(chan struct{})
	ss := newSession(srv, srvEnd)
	go func() {
		ss.run()
		close(done)
	}()
	t.Cleanup(func() {
		cli.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("session did not unwind after the client closed")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	var hello wire.Builder
	hello.U32(wire.Magic)
	hello.U8(wire.Version)
	writeFrame(t, cli, wire.THello, hello.Bytes())
	if ft, _ := readFrame(t, cli); ft != wire.THelloOK {
		t.Fatalf("handshake answered %s", ft)
	}
	return cli
}

func writeFrame(t *testing.T, c net.Conn, ft wire.Type, payload []byte) {
	t.Helper()
	if err := wire.WriteFrame(c, ft, payload); err != nil {
		t.Fatalf("write %s: %v", ft, err)
	}
}

func readFrame(t *testing.T, c net.Conn) (wire.Type, []byte) {
	t.Helper()
	ft, p, err := wire.ReadFrame(c)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return ft, p
}

// TestAbandonedStreamNotCached is a regression test for result-cache
// poisoning: a cacheable query canceled mid-stream must not be stored as a
// complete result, or later identical queries replay truncated data with a
// successful Done frame.
func TestAbandonedStreamNotCached(t *testing.T) {
	db, err := bufferdb.OpenTPCH(0.002, bufferdb.Options{CardinalityThreshold: 100, MemoryLimit: 256 << 20})
	if err != nil {
		t.Fatalf("OpenTPCH: %v", err)
	}
	cli := pipeSession(t, Config{DB: db, ResultCacheBytes: 8 << 20, BatchRows: 8})

	want, err := db.RowCount("lineitem")
	if err != nil {
		t.Fatal(err)
	}

	const q = "SELECT l_orderkey, l_extendedprice FROM lineitem"
	sendQuery := func() {
		var b wire.Builder
		b.Opts(wire.QueryOpts{})
		b.String(q)
		writeFrame(t, cli, wire.TQuery, b.Bytes())
	}

	// First run: read the column header and one row batch, then cancel.
	// With BatchRows = 8 the result is ~1500 batches, and the pipe
	// guarantees the server is parked mid-stream when the Cancel lands.
	sendQuery()
	if ft, _ := readFrame(t, cli); ft != wire.TColumns {
		t.Fatalf("stream opened with %s", ft)
	}
	if ft, _ := readFrame(t, cli); ft != wire.TRowBatch {
		t.Fatalf("first stream frame after Columns was %s", ft)
	}
	writeFrame(t, cli, wire.TCancel, nil)
	for {
		ft, p := readFrame(t, cli)
		if ft == wire.TRowBatch {
			continue
		}
		if ft != wire.TError {
			t.Fatalf("canceled stream terminated with %s", ft)
		}
		r := wire.NewReader(p)
		if code := wire.Code(r.U16()); code != wire.CodeCanceled {
			t.Fatalf("canceled stream reported %s", code)
		}
		break
	}

	// Second run: the truncated first attempt must not replay from the
	// cache — the stream has to deliver the full table again.
	sendQuery()
	if ft, _ := readFrame(t, cli); ft != wire.TColumns {
		t.Fatalf("second stream opened with %s", ft)
	}
	for {
		ft, p := readFrame(t, cli)
		switch ft {
		case wire.TRowBatch:
			continue
		case wire.TDone:
			r := wire.NewReader(p)
			if total := r.U64(); total != uint64(want) {
				t.Fatalf("query after abandoned stream returned %d rows, want %d (truncated result was cached)", total, want)
			}
			return
		default:
			t.Fatalf("second stream terminated with %s", ft)
		}
	}
}

// TestResultCacheMaxEntryClamp asserts a per-entry cap larger than the
// whole budget is clamped, so no single entry can pin the cache
// permanently over budget (put never evicts the last resident entry).
func TestResultCacheMaxEntryClamp(t *testing.T) {
	c := newResultCache(nil, 512, 1<<30)
	if c.maxEntry != 512 {
		t.Fatalf("maxEntry = %d, want clamped to budget 512", c.maxEntry)
	}
	c.put("k", &cachedResult{cols: []string{"a"}, size: 600, done: true}, c.writeEpoch(), nil, nil)
	if len(c.entries) != 0 {
		t.Fatal("entry larger than the whole budget was cached")
	}
	if c := newResultCache(nil, 1024, 0); c.maxEntry != 128 {
		t.Fatalf("default maxEntry = %d, want budget/8", c.maxEntry)
	}
}

// TestResultCacheStaleEpochDropped pins the invalidation race: a query
// that snapshots its epoch, then sees a write invalidate the cache while
// it streams, must not park its pre-write result afterwards.
func TestResultCacheStaleEpochDropped(t *testing.T) {
	c := newResultCache(new(bufferdb.DB), 1024, 0)
	res := func() *cachedResult {
		return &cachedResult{cols: []string{"a"}, size: 16, done: true}
	}

	epoch := c.writeEpoch()
	c.invalidateAll() // the write commits mid-query
	c.put("k", res(), epoch, nil, nil)
	if len(c.entries) != 0 {
		t.Fatal("result from before the invalidation was cached")
	}

	// A query that started after the invalidation caches normally.
	c.put("k", res(), c.writeEpoch(), nil, nil)
	if len(c.entries) != 1 {
		t.Fatal("fresh result was not cached")
	}
}
