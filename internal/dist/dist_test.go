package dist_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/dist"
	"bufferdb/internal/server"
)

// testSF is small enough to generate three shard slices in milliseconds but
// large enough that scans stream multiple row batches per shard.
const testSF = 0.002

// shardFleet is an in-process sharded deployment: N shard daemons over the
// same seed plus the coordinator fronting them.
type shardFleet struct {
	servers []*server.Server
	addrs   []string
	co      *dist.Coordinator
}

// startShard boots one shard daemon holding slice idx-of-n. hook, when
// non-nil, attaches fault injectors to the shard's statements.
func startShard(t testing.TB, idx, n int, sf float64, hook func(string) *bufferdb.FaultInjector) (*server.Server, string) {
	t.Helper()
	db, err := bufferdb.OpenTPCH(sf, bufferdb.Options{
		ShardIndex:           idx,
		ShardCount:           n,
		CardinalityThreshold: 100,
		MemoryLimit:          256 << 20,
	})
	if err != nil {
		t.Fatalf("OpenTPCH shard %d/%d: %v", idx, n, err)
	}
	srv, err := server.New(server.Config{DB: db, FaultHook: hook})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, l.Addr().String()
}

// startFleet boots n shards and a coordinator over them.
func startFleet(t testing.TB, n int, cfg dist.Config) *shardFleet {
	return startFleetSF(t, n, testSF, cfg)
}

func startFleetSF(t testing.TB, n int, sf float64, cfg dist.Config) *shardFleet {
	t.Helper()
	f := &shardFleet{}
	for i := 0; i < n; i++ {
		srv, addr := startShard(t, i, n, sf, nil)
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, addr)
	}
	cfg.Shards = f.addrs
	co, err := dist.Open(cfg)
	if err != nil {
		t.Fatalf("dist.Open: %v", err)
	}
	t.Cleanup(func() { co.Close() })
	f.co = co
	return f
}

// singleNode opens the unsharded reference database over the same seed.
func singleNode(t testing.TB) *bufferdb.DB {
	t.Helper()
	db, err := bufferdb.OpenTPCH(testSF, bufferdb.Options{
		CardinalityThreshold: 100,
		MemoryLimit:          256 << 20,
	})
	if err != nil {
		t.Fatalf("OpenTPCH: %v", err)
	}
	return db
}

// drainCoord materializes a coordinator cursor.
func drainCoord(t testing.TB, rows *dist.Rows) [][]any {
	t.Helper()
	defer rows.Close()
	var out [][]any
	for rows.Next() {
		out = append(out, append([]any(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("coordinator rows: %v", err)
	}
	return out
}

// cellString canonicalizes one native cell, rounding floats so merge-order
// summation differences below 1e-9 relative compare equal.
func cellString(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'e', 9, 64)
	case time.Time:
		return x.UTC().Format("2006-01-02")
	default:
		return fmt.Sprintf("%v", x)
	}
}

func rowString(row []any) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = cellString(v)
	}
	return strings.Join(parts, " | ")
}

// compareRows checks got against want, pairwise when ordered, as multisets
// otherwise. Floats compare with 1e-9 relative tolerance.
func compareRows(t *testing.T, got, want [][]any, ordered bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d, want %d", len(got), len(want))
	}
	if !ordered {
		sortKey := func(rows [][]any) []string {
			keys := make([]string, len(rows))
			for i, r := range rows {
				keys[i] = rowString(r)
			}
			sort.Strings(keys)
			return keys
		}
		g, w := sortKey(got), sortKey(want)
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("multiset mismatch at sorted row %d:\n got  %s\n want %s", i, g[i], w[i])
			}
		}
		return
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d width: got %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if !cellEqual(got[i][j], want[i][j]) {
				t.Fatalf("row %d col %d: got %v (%T), want %v (%T)",
					i, j, got[i][j], got[i][j], want[i][j], want[i][j])
			}
		}
	}
}

func cellEqual(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) == math.IsNaN(bf)
		}
		diff := math.Abs(af - bf)
		scale := math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
		return diff <= 1e-9*scale
	}
	at, aok := a.(time.Time)
	bt, bok := b.(time.Time)
	if aok && bok {
		return at.Equal(bt)
	}
	return a == b
}

// equivalenceQueries covers every scatter shape: grouped and global
// aggregates (COUNT/SUM/AVG/MIN/MAX and arithmetic over them), co-located
// sharded joins, replicated⋈sharded joins, bare scans, and top-N pushdown.
var equivalenceQueries = []struct {
	name    string
	sql     string
	ordered bool
}{
	{"agg_group", `SELECT l_returnflag, COUNT(*), SUM(l_extendedprice), AVG(l_quantity), MIN(l_shipdate), MAX(l_discount)
		FROM lineitem WHERE l_quantity > 10 GROUP BY l_returnflag ORDER BY l_returnflag`, true},
	{"agg_global", `SELECT SUM(l_extendedprice * l_discount), COUNT(*) FROM lineitem
		WHERE l_discount > 0.02 AND l_quantity < 24`, true},
	{"agg_arith", `SELECT l_linestatus, SUM(l_extendedprice * (1 - l_discount)) AS revenue, AVG(l_extendedprice) / 1000
		FROM lineitem GROUP BY l_linestatus ORDER BY l_linestatus`, true},
	{"join_colocated", `SELECT o_orderpriority, COUNT(*), SUM(l_extendedprice)
		FROM orders JOIN lineitem ON l_orderkey = o_orderkey
		WHERE o_orderdate >= DATE '1995-01-01' GROUP BY o_orderpriority ORDER BY o_orderpriority`, true},
	{"join_replicated", `SELECT c_mktsegment, COUNT(*), SUM(o_totalprice)
		FROM customer JOIN orders ON o_custkey = c_custkey
		GROUP BY c_mktsegment ORDER BY c_mktsegment`, true},
	{"scan_unordered", `SELECT l_orderkey, l_quantity, l_shipdate FROM lineitem WHERE l_quantity >= 49`, false},
	{"scan_topn", `SELECT l_orderkey, l_extendedprice FROM lineitem
		ORDER BY l_extendedprice DESC, l_orderkey LIMIT 5`, true},
	{"replicated_only", `SELECT r_name, COUNT(*) FROM region GROUP BY r_name ORDER BY r_name`, true},
}

// TestDistEquivalence is the acceptance gate: every scatter shape over a
// 3-shard deployment matches the single-node answer, under every engine.
func TestDistEquivalence(t *testing.T) {
	fleet := startFleet(t, 3, dist.Config{})
	ref := singleNode(t)

	for _, engine := range bufferdb.EngineNames() {
		e, err := bufferdb.ParseEngine(engine)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", engine, err)
		}
		for _, q := range equivalenceQueries {
			t.Run(engine+"/"+q.name, func(t *testing.T) {
				want, err := ref.Query(context.Background(), q.sql, bufferdb.WithEngine(e))
				if err != nil {
					t.Fatalf("single-node: %v", err)
				}
				rows, err := fleet.co.Query(context.Background(), q.sql, client.WithEngine(engine))
				if err != nil {
					t.Fatalf("coordinator: %v", err)
				}
				got := drainCoord(t, rows)
				compareRows(t, got, want.Rows, q.ordered)
			})
		}
	}
	if n := fleet.co.TrackedBytes(); n != 0 {
		t.Fatalf("coordinator tracked bytes after drain = %d, want 0", n)
	}
}

// TestDistColumns checks the coordinator restores single-node output names
// through the partial-aggregate rewrite.
func TestDistColumns(t *testing.T) {
	fleet := startFleet(t, 2, dist.Config{})
	ref := singleNode(t)
	q := `SELECT l_returnflag, COUNT(*) AS n, SUM(l_extendedprice), AVG(l_quantity)
		FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`

	want, err := ref.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("single-node: %v", err)
	}
	rows, err := fleet.co.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer rows.Close()
	got := rows.Columns()
	if len(got) != len(want.Columns) {
		t.Fatalf("columns: got %v, want %v", got, want.Columns)
	}
	for i := range got {
		if got[i] != want.Columns[i] {
			t.Fatalf("column %d: got %q, want %q", i, got[i], want.Columns[i])
		}
	}
}

// TestDistScan checks the coordinator cursor's Scan mirrors the client
// contract in both passthrough and scatter modes.
func TestDistScan(t *testing.T) {
	fleet := startFleet(t, 2, dist.Config{})

	for _, q := range []string{
		`SELECT r_name, COUNT(*) FROM region GROUP BY r_name ORDER BY r_name LIMIT 1`, // passthrough
		`SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag LIMIT 1`, // scatter
	} {
		rows, err := fleet.co.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if err := rows.Scan(new(string), new(int64)); err == nil ||
			!strings.Contains(err.Error(), "without a successful Next") {
			t.Fatalf("Scan before Next: %v", err)
		}
		if !rows.Next() {
			t.Fatalf("Next: no rows (err %v)", rows.Err())
		}
		var name string
		var n int64
		if err := rows.Scan(&name, &n); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if name == "" || n <= 0 {
			t.Fatalf("Scan produced (%q, %d)", name, n)
		}
		if err := rows.Scan(&name); err == nil || !strings.Contains(err.Error(), "destinations") {
			t.Fatalf("arity error: %v", err)
		}
		rows.Close()
		if err := rows.Scan(&name, &n); err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("Scan after Close: %v", err)
		}
	}
}

// TestDistSingleShardRouting checks replicated-only queries pass through
// round-robin rather than scattering.
func TestDistSingleShardRouting(t *testing.T) {
	fleet := startFleet(t, 2, dist.Config{})
	for i := 0; i < 4; i++ {
		rows, err := fleet.co.Query(context.Background(), `SELECT COUNT(*) FROM nation`)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		got := drainCoord(t, rows)
		if len(got) != 1 || got[0][0].(int64) != 25 {
			t.Fatalf("nation count: %v", got)
		}
	}
}

// TestDistRejections checks the typed plan-time failures.
func TestDistRejections(t *testing.T) {
	fleet := startFleet(t, 2, dist.Config{})

	_, err := fleet.co.Query(context.Background(),
		`SELECT COUNT(*) FROM lineitem JOIN orders ON l_partkey = o_custkey`)
	if !errors.Is(err, dist.ErrNotDistributable) {
		t.Fatalf("non-colocated join: %v, want ErrNotDistributable", err)
	}

	_, err = fleet.co.Query(context.Background(),
		`INSERT INTO region VALUES (99, 'NOWHERE', 'x')`)
	if !errors.Is(err, bufferdb.ErrReadOnly) {
		t.Fatalf("insert: %v, want ErrReadOnly", err)
	}
}

// TestDistOptionForwarding checks per-query knobs cross the coordinator to
// the shards: a tiny memory budget trips the shard-side governor and the
// sentinel survives the two hops back.
func TestDistOptionForwarding(t *testing.T) {
	fleet := startFleet(t, 2, dist.Config{})

	rows, err := fleet.co.Query(context.Background(),
		`SELECT l_orderkey, COUNT(*) FROM lineitem GROUP BY l_orderkey`,
		client.WithMemoryBudget(512))
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if !errors.Is(err, bufferdb.ErrMemoryBudgetExceeded) {
		t.Fatalf("budget 512: %v, want ErrMemoryBudgetExceeded", err)
	}
	var se *dist.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("budget error not attributed to a shard: %v", err)
	}
	if errors.Is(err, bufferdb.ErrShardUnavailable) {
		t.Fatalf("engine error misclassified as shard loss: %v", err)
	}
	if n := fleet.co.TrackedBytes(); n != 0 {
		t.Fatalf("tracked bytes after failed query = %d, want 0", n)
	}
}

// TestDistHedging exercises the hedged-scan path against healthy shards:
// with an aggressive delay every scan may hedge, and the result must still
// be exact with no leaked streams.
func TestDistHedging(t *testing.T) {
	fleet := startFleet(t, 2, dist.Config{HedgeDelay: time.Nanosecond})
	ref := singleNode(t)
	q := `SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`

	want, err := ref.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("single-node: %v", err)
	}
	for i := 0; i < 3; i++ {
		rows, err := fleet.co.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		compareRows(t, drainCoord(t, rows), want.Rows, true)
	}
	if n := fleet.co.TrackedBytes(); n != 0 {
		t.Fatalf("tracked bytes = %d, want 0", n)
	}
}

// TestDistChaosShardKill is the chaos gate: SIGKILL-equivalent loss of one
// shard mid-query surfaces a typed ShardError wrapping ErrShardUnavailable,
// sibling streams tear down, no goroutines leak, and the coordinator's
// tracked memory audits to zero.
func TestDistChaosShardKill(t *testing.T) {
	// Victim shard 1 carries an injected per-row scan latency: on loopback a
	// small slice otherwise streams into the kernel socket buffers in full
	// before the kill can land, and a completed stream survives any kill.
	// The latency holds the shard's execution genuinely mid-flight.
	slow := func(sql string) *bufferdb.FaultInjector {
		if !strings.Contains(sql, "lineitem") {
			return nil
		}
		return bufferdb.NewFaultInjector(1, bufferdb.Fault{
			Match: "Scan", Kind: bufferdb.FaultLatency,
			After: 100, Every: 10, Latency: 2 * time.Millisecond,
		})
	}
	f := &shardFleet{}
	for i := 0; i < 3; i++ {
		hook := slow
		if i != 1 {
			hook = nil
		}
		srv, addr := startShard(t, i, 3, testSF, hook)
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, addr)
	}
	co, err := dist.Open(dist.Config{Shards: f.addrs})
	if err != nil {
		t.Fatalf("dist.Open: %v", err)
	}
	t.Cleanup(func() { co.Close() })
	f.co = co
	fleet := f
	baseline := runtime.NumGoroutine()

	rows, err := fleet.co.Query(context.Background(),
		`SELECT l_orderkey, l_quantity, l_extendedprice, l_comment FROM lineitem`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}

	// Consume a little, then kill shard 1 abruptly: an expired context makes
	// Shutdown force-close every connection instead of draining.
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	killed, cancel := context.WithCancel(context.Background())
	cancel()
	_ = fleet.servers[1].Shutdown(killed)

	for rows.Next() {
	}
	err = rows.Err()
	if err == nil {
		t.Fatalf("stream survived shard kill")
	}
	var se *dist.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *dist.ShardError", err, err)
	}
	if se.Shard != 1 {
		t.Fatalf("error attributed to shard %d (%s), want 1", se.Shard, se.Addr)
	}
	if !errors.Is(err, bufferdb.ErrShardUnavailable) {
		t.Fatalf("error does not wrap ErrShardUnavailable: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if n := fleet.co.TrackedBytes(); n != 0 {
		t.Fatalf("coordinator tracked bytes after chaos = %d, want 0", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak after chaos: %d running, baseline %d", n, baseline)
	}
}

// TestDistDeadShardAtOpen checks a shard that is down before the query
// starts fails the scatter with the same typed error.
func TestDistDeadShardAtOpen(t *testing.T) {
	fleet := startFleet(t, 2, dist.Config{
		Client: client.Config{DialTimeout: time.Second, BusyRetries: 0},
	})
	killed, cancel := context.WithCancel(context.Background())
	cancel()
	_ = fleet.servers[0].Shutdown(killed)

	rows, err := fleet.co.Query(context.Background(),
		`SELECT COUNT(*) FROM lineitem`)
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if !errors.Is(err, bufferdb.ErrShardUnavailable) {
		t.Fatalf("dead shard at open: %v, want ErrShardUnavailable", err)
	}
	if n := fleet.co.TrackedBytes(); n != 0 {
		t.Fatalf("tracked bytes = %d, want 0", n)
	}
}

// TestDistServe drives the coordinator's own wire front-end with the
// standard client: scatter results match single-node, Tables sums sharded
// row counts, and a mid-stream client cancel unwinds cleanly.
func TestDistServe(t *testing.T) {
	fleet := startFleet(t, 3, dist.Config{})
	ref := singleNode(t)

	srv, err := dist.NewServer(dist.ServerConfig{Coordinator: fleet.co, Info: "test-coordinator"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})

	cl, err := client.Dial(l.Addr().String(), client.Config{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	q := `SELECT l_returnflag, COUNT(*), SUM(l_extendedprice) FROM lineitem
		GROUP BY l_returnflag ORDER BY l_returnflag`
	want, err := ref.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("single-node: %v", err)
	}
	res, err := cl.QueryAll(context.Background(), q)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}
	compareRows(t, res.Rows, want.Rows, true)

	// Tables must report deployment-wide counts: the sharded tables sum to
	// the single-node cardinality.
	infos, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	wantCount, err := ref.RowCount("lineitem")
	if err != nil {
		t.Fatalf("RowCount: %v", err)
	}
	var got uint64
	for _, ti := range infos {
		if ti.Name == "lineitem" {
			got = ti.Rows
		}
	}
	if got != uint64(wantCount) {
		t.Fatalf("coordinator lineitem rows = %d, want %d", got, wantCount)
	}

	// A prepared statement executes through the coordinator too.
	stmt := cl.Prepare(q)
	res2, err := stmt.QueryAll(context.Background())
	if err != nil {
		t.Fatalf("stmt.QueryAll: %v", err)
	}
	compareRows(t, res2.Rows, want.Rows, true)
	if err := stmt.Close(); err != nil {
		t.Fatalf("stmt.Close: %v", err)
	}

	// Client-side cancel mid-stream: the cursor reports cancellation and the
	// coordinator's tracked memory drains.
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := cl.Query(ctx, `SELECT l_orderkey, l_comment FROM lineitem`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i := 0; i < 5 && rows.Next(); i++ {
	}
	cancel()
	for rows.Next() {
	}
	rows.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && fleet.co.TrackedBytes() != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if n := fleet.co.TrackedBytes(); n != 0 {
		t.Fatalf("tracked bytes after cancel = %d, want 0", n)
	}
}

// TestDistConfigValidation covers constructor errors.
func TestDistConfigValidation(t *testing.T) {
	if _, err := dist.Open(dist.Config{}); err == nil {
		t.Fatal("Open with no shards succeeded")
	}
	if _, err := dist.NewServer(dist.ServerConfig{}); err == nil {
		t.Fatal("NewServer with no coordinator succeeded")
	}
	if _, err := bufferdb.OpenTPCH(testSF, bufferdb.Options{
		ShardCount: 2, DataDir: t.TempDir(),
	}); err == nil {
		t.Fatal("sharded OpenTPCH with DataDir succeeded")
	}
}
