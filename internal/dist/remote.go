package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bufferdb/internal/client"
	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// Failover backoff between successive replica attempts of one leg: capped
// exponential, so a flapping fleet is not hammered but a clean kill -9
// fails over in milliseconds.
const (
	failoverBackoff    = 2 * time.Millisecond
	failoverMaxBackoff = 250 * time.Millisecond
)

// remoteScan is an exec.Operator that streams one hash slice's share of a
// scattered statement from whichever replica is healthy. It is the leaf the
// coordinator's Exchange gathers: each exchange worker drives one
// remoteScan on its own goroutine, so slices stream concurrently while the
// merge consumes them in slice order.
//
// Availability: Open routes the leg through the breakers to a healthy
// replica; a transport failure at stream start or mid-stream fails the leg
// over to the next replica with capped exponential backoff. Legs are
// side-effect-free, so replay is always safe; replayable legs additionally
// have deterministic streams, so a mid-stream failover re-issues the leg
// and skips the rows already emitted. A non-replayable leg that already
// emitted rows surfaces a rescatterError instead, and the coordinator
// cursor restarts the whole scatter (safe while nothing surfaced past the
// blocking merge above such legs).
//
// Cancellation flows through the exec context's Ctx: the client cursor's
// watcher turns it into a Cancel frame, the shard frees its admission slot
// and tracked memory, and the blocked read returns. This is what lets the
// coordinator tear down sibling streams after one leg fails for good.
type remoteScan struct {
	co         *Coordinator
	slice      int
	sql        string
	opts       []client.Option
	schema     storage.Schema
	replayable bool

	rows    *client.Rows
	node    int   // node currently serving the leg
	probe   bool  // this stream is its breaker's half-open probe
	emitted int64 // rows this leg already handed to the merge
	hedgeWG sync.WaitGroup
	opened  time.Time
	first   bool // first row not yet seen (health latency)
}

func newRemoteScan(co *Coordinator, slice int, sqlText string, opts []client.Option, schema storage.Schema, replayable bool) *remoteScan {
	return &remoteScan{co: co, slice: slice, sql: sqlText, opts: opts, schema: schema, replayable: replayable}
}

// Open routes the leg to a healthy replica and starts its stream.
func (r *remoteScan) Open(ctx *exec.Context) error {
	r.opened = time.Now()
	r.first = true
	r.emitted = 0
	return r.connect(ctx, -1)
}

// connect starts the leg's stream on a healthy replica, failing over
// across replicas with capped exponential backoff. exclude is a node that
// just failed mid-stream (-1 for none); nodes that fail during this call
// join the exclusion set, so one pass visits each replica at most once.
func (r *remoteScan) connect(ctx *exec.Context, exclude int) error {
	tried := map[int]bool{}
	if exclude >= 0 {
		tried[exclude] = true
	}
	backoff := failoverBackoff
	var lastErr error
	lastNode := exclude
	for {
		node, probe, ok := r.co.route(r.slice, tried)
		if !ok {
			if lastErr == nil {
				lastErr = fmt.Errorf("dist: every replica of slice %d has an open circuit breaker", r.slice)
			}
			if lastNode < 0 {
				lastNode = r.slice
			}
			return r.co.nodeErr(r.slice, lastNode, lastErr)
		}
		rows, err := r.startNode(ctx, node)
		if err == nil {
			r.co.breakerSuccess(node, probe)
			r.rows, r.node, r.probe = rows, node, probe
			return nil
		}
		if !client.IsTransport(err) || ctx.Ctx.Err() != nil {
			// The node answered (or we were canceled): not a node-health
			// event, and not worth a replica retry.
			r.co.breakerSuccess(node, probe)
			return r.co.nodeErr(r.slice, node, err)
		}
		r.co.breakerFailure(node, probe)
		metricFailovers(r.co.cfg.Shards[node]).Inc()
		tried[node] = true
		lastErr, lastNode = err, node
		if !sleepCtx(ctx.Ctx, backoff) {
			return r.co.nodeErr(r.slice, node, ctx.Ctx.Err())
		}
		if backoff *= 2; backoff > failoverMaxBackoff {
			backoff = failoverMaxBackoff
		}
	}
}

// legOpts is the option set shipped to one node: the caller's options plus
// slice addressing when the fleet is replicated (appended last, so it
// survives a WithQueryOpts in the caller's set).
func (r *remoteScan) legOpts() []client.Option {
	if r.co.rf <= 1 {
		return r.opts
	}
	return append(append([]client.Option{}, r.opts...), client.WithSlice(r.slice))
}

// startNode opens the leg's stream on one node, optionally hedged: if the
// node has not answered within HedgeDelay a second attempt goes out, and
// whichever stream opens first wins. The loser is canceled IMMEDIATELY and
// drained on its own goroutine — its head read aborts on the canceled
// context, so a wedged node cannot pin the pooled connection past the
// query (Close joins the drain).
func (r *remoteScan) startNode(ctx *exec.Context, node int) (*client.Rows, error) {
	cl := r.co.shards[node]
	addr := r.co.cfg.Shards[node]
	metricShardScans(addr).Inc()
	opts := r.legOpts()

	if r.co.cfg.HedgeDelay <= 0 {
		return cl.Query(ctx.Ctx, r.sql, opts...)
	}

	type attempt struct {
		rows *client.Rows
		err  error
	}
	type inflight struct {
		cancel context.CancelFunc
		ch     chan attempt
	}
	launch := func() *inflight {
		actx, cancel := context.WithCancel(ctx.Ctx)
		inf := &inflight{cancel: cancel, ch: make(chan attempt, 1)}
		go func() {
			rows, err := cl.Query(actx, r.sql, opts...)
			inf.ch <- attempt{rows, err}
		}()
		return inf
	}
	// abandon cancels a still-outstanding attempt and drains it off the hot
	// path; Close waits for the drain, so no stream leaks past the query.
	abandon := func(inf *inflight) {
		inf.cancel()
		r.hedgeWG.Add(1)
		go func() {
			defer r.hedgeWG.Done()
			if res := <-inf.ch; res.err == nil {
				_ = res.rows.Close()
			}
		}()
	}

	first := launch()
	timer := time.NewTimer(r.co.cfg.HedgeDelay)
	defer timer.Stop()
	select {
	case res := <-first.ch:
		if res.err != nil {
			first.cancel()
		}
		return res.rows, res.err
	case <-timer.C:
	}

	metricHedged(addr).Inc()
	second := launch()
	var win attempt
	var winInf, loser *inflight
	select {
	case res := <-first.ch:
		win, winInf, loser = res, first, second
	case res := <-second.ch:
		win, winInf, loser = res, second, first
	}
	if win.err == nil {
		abandon(loser)
		return win.rows, nil
	}
	// The settled attempt failed; fall back to the one still in flight.
	winInf.cancel()
	res := <-loser.ch
	if res.err == nil {
		return res.rows, nil
	}
	loser.cancel()
	return nil, win.err
}

// sleepCtx sleeps d unless ctx is done first; reports whether it slept.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Next implements Operator, converting the wire row back into the engine's
// value representation and failing the leg over on mid-stream transport
// loss.
func (r *remoteScan) Next(ctx *exec.Context) (storage.Row, error) {
	for {
		if err := ctx.Canceled(); err != nil {
			return nil, err
		}
		if !r.rows.Next() {
			err := r.rows.Err()
			if err == nil {
				return nil, nil
			}
			if client.IsTransport(err) && ctx.Ctx.Err() == nil {
				r.co.breakerFailure(r.node, r.probe)
				metricFailovers(r.co.cfg.Shards[r.node]).Inc()
				if ferr := r.failover(ctx, err); ferr != nil {
					return nil, ferr
				}
				continue
			}
			return nil, r.co.nodeErr(r.slice, r.node, err)
		}
		if r.first {
			r.first = false
			metricShardFirstRow(r.co.cfg.Shards[r.node]).Observe(time.Since(r.opened).Seconds())
		}
		native := r.rows.Row()
		if len(native) != len(r.schema) {
			return nil, r.co.nodeErr(r.slice, r.node, errShape(len(native), len(r.schema)))
		}
		out := make(storage.Row, len(native))
		for i, v := range native {
			out[i] = toValue(v)
		}
		r.emitted++
		return out, nil
	}
}

// failover moves a mid-stream leg to another replica. Replayable legs (or
// legs that have emitted nothing) reconnect and skip the rows already
// merged; a non-replayable leg with emitted rows escalates to a full
// scatter restart via rescatterError.
func (r *remoteScan) failover(ctx *exec.Context, cause error) error {
	_ = r.rows.Close()
	r.rows = nil
	failed := r.node
	if !r.replayable && r.emitted > 0 {
		return &rescatterError{cause: r.co.nodeErr(r.slice, failed, cause)}
	}
	exclude := failed
	for {
		if err := r.connect(ctx, exclude); err != nil {
			return err
		}
		replayErr := r.replay()
		if replayErr == nil {
			metricLegReplays(r.co.cfg.Shards[r.node]).Inc()
			return nil
		}
		if client.IsTransport(replayErr) && ctx.Ctx.Err() == nil {
			// Lost the replacement replica during replay too; exclude it
			// and keep going — the breakers bound how long this can loop.
			r.co.breakerFailure(r.node, r.probe)
			_ = r.rows.Close()
			r.rows = nil
			exclude = r.node
			continue
		}
		return r.co.nodeErr(r.slice, r.node, replayErr)
	}
}

// replay advances a freshly reconnected leg past the rows it already
// emitted. The stream is deterministic (replayable legs only), so the
// skipped prefix is byte-identical to what the merge consumed.
func (r *remoteScan) replay() error {
	for skipped := int64(0); skipped < r.emitted; skipped++ {
		if !r.rows.Next() {
			if err := r.rows.Err(); err != nil {
				return err
			}
			return fmt.Errorf("dist: replica stream of slice %d ended after %d rows while replaying %d already-emitted rows",
				r.slice, skipped, r.emitted)
		}
	}
	return nil
}

// Close tears the slice stream down (canceling it server-side when it is
// still mid-stream) and waits for any hedge loser to finish draining.
func (r *remoteScan) Close(ctx *exec.Context) error {
	var err error
	if r.rows != nil {
		err = r.rows.Close()
		r.rows = nil
		metricShardLatency(r.co.cfg.Shards[r.node]).Observe(time.Since(r.opened).Seconds())
	}
	r.hedgeWG.Wait()
	return err
}

func (r *remoteScan) Schema() storage.Schema    { return r.schema }
func (r *remoteScan) Children() []exec.Operator { return nil }
func (r *remoteScan) Name() string              { return "RemoteScan" }
func (r *remoteScan) Module() *codemodel.Module { return nil }
func (r *remoteScan) Blocking() bool            { return false }

func errShape(got, want int) error {
	return fmt.Errorf("dist: shard row has %d columns, coordinator expected %d", got, want)
}

// toValue converts a decoded wire value back into the engine
// representation. Dates cross the wire as midnight-UTC instants and return
// to day numbers.
func toValue(v any) storage.Value {
	switch x := v.(type) {
	case nil:
		return storage.Null
	case bool:
		return storage.NewBool(x)
	case int64:
		return storage.NewInt(x)
	case float64:
		return storage.NewFloat(x)
	case string:
		return storage.NewString(x)
	case time.Time:
		return storage.NewDate(x.Unix() / 86400)
	default:
		return storage.Null
	}
}
