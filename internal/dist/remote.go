package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bufferdb/internal/client"
	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// remoteScan is an exec.Operator that streams one shard's slice of a
// scattered statement. It is the leaf the coordinator's Exchange gathers:
// each exchange worker drives one remoteScan on its own goroutine, so
// shards stream concurrently while the merge consumes them in shard order.
//
// Cancellation flows through the exec context's Ctx: the client cursor's
// watcher turns it into a Cancel frame, the shard frees its admission slot
// and tracked memory, and the blocked read returns. This is what lets the
// coordinator tear down sibling streams after one shard fails.
type remoteScan struct {
	co     *Coordinator
	shard  int
	sql    string
	opts   []client.Option
	schema storage.Schema

	rows    *client.Rows
	hedgeWG sync.WaitGroup
	opened  time.Time
	first   bool // first row not yet seen (health latency)
}

func newRemoteScan(co *Coordinator, shardIdx int, sqlText string, opts []client.Option, schema storage.Schema) *remoteScan {
	return &remoteScan{co: co, shard: shardIdx, sql: sqlText, opts: opts, schema: schema}
}

// Open starts the shard stream, optionally hedged: if the shard has not
// answered within HedgeDelay a second attempt goes out, and whichever
// stream opens first wins; the loser is canceled and drained on its own
// goroutine (Close waits for it).
func (r *remoteScan) Open(ctx *exec.Context) error {
	r.opened = time.Now()
	r.first = true
	cl := r.co.shards[r.shard]
	addr := r.co.cfg.Shards[r.shard]
	metricShardScans(addr).Inc()

	if r.co.cfg.HedgeDelay <= 0 {
		rows, err := cl.Query(ctx.Ctx, r.sql, r.opts...)
		if err != nil {
			return r.co.shardErr(r.shard, err)
		}
		r.rows = rows
		return nil
	}

	type attempt struct {
		rows   *client.Rows
		err    error
		cancel context.CancelFunc
	}
	results := make(chan attempt, 2)
	launch := func() {
		actx, cancel := context.WithCancel(ctx.Ctx)
		rows, err := cl.Query(actx, r.sql, r.opts...)
		results <- attempt{rows: rows, err: err, cancel: cancel}
	}
	outstanding := 1
	go launch()
	timer := time.NewTimer(r.co.cfg.HedgeDelay)
	defer timer.Stop()

	var winner *attempt
	var firstErr error
	for winner == nil && outstanding > 0 {
		select {
		case a := <-results:
			outstanding--
			if a.err == nil {
				winner = &a
			} else if firstErr == nil {
				firstErr = a.err
				a.cancel()
			} else {
				a.cancel()
			}
		case <-timer.C:
			if outstanding == 1 && winner == nil {
				metricHedged(addr).Inc()
				outstanding++
				go launch()
			}
		}
	}
	if winner == nil {
		return r.co.shardErr(r.shard, firstErr)
	}
	r.rows = winner.rows
	// Abandon any still-outstanding attempt: when it settles, cancel and
	// drain it off the hot path. Close waits for this goroutine, so no
	// stream leaks past the query.
	if outstanding > 0 {
		r.hedgeWG.Add(1)
		go func(n int) {
			defer r.hedgeWG.Done()
			for i := 0; i < n; i++ {
				a := <-results
				a.cancel()
				if a.err == nil {
					_ = a.rows.Close()
				}
			}
		}(outstanding)
	}
	return nil
}

// Next implements Operator, converting the wire row back into the engine's
// value representation.
func (r *remoteScan) Next(ctx *exec.Context) (storage.Row, error) {
	if err := ctx.Canceled(); err != nil {
		return nil, err
	}
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return nil, r.co.shardErr(r.shard, err)
		}
		return nil, nil
	}
	if r.first {
		r.first = false
		metricShardFirstRow(r.co.cfg.Shards[r.shard]).Observe(time.Since(r.opened).Seconds())
	}
	native := r.rows.Row()
	if len(native) != len(r.schema) {
		return nil, r.co.shardErr(r.shard, errShape(len(native), len(r.schema)))
	}
	out := make(storage.Row, len(native))
	for i, v := range native {
		out[i] = toValue(v)
	}
	return out, nil
}

// Close tears the shard stream down (canceling it server-side when it is
// still mid-stream) and waits for any hedge loser to finish draining.
func (r *remoteScan) Close(ctx *exec.Context) error {
	var err error
	if r.rows != nil {
		err = r.rows.Close()
		r.rows = nil
		metricShardLatency(r.co.cfg.Shards[r.shard]).Observe(time.Since(r.opened).Seconds())
	}
	r.hedgeWG.Wait()
	return err
}

func (r *remoteScan) Schema() storage.Schema    { return r.schema }
func (r *remoteScan) Children() []exec.Operator { return nil }
func (r *remoteScan) Name() string              { return "RemoteScan" }
func (r *remoteScan) Module() *codemodel.Module { return nil }
func (r *remoteScan) Blocking() bool            { return false }

func errShape(got, want int) error {
	return fmt.Errorf("dist: shard row has %d columns, coordinator expected %d", got, want)
}

// toValue converts a decoded wire value back into the engine
// representation. Dates cross the wire as midnight-UTC instants and return
// to day numbers.
func toValue(v any) storage.Value {
	switch x := v.(type) {
	case nil:
		return storage.Null
	case bool:
		return storage.NewBool(x)
	case int64:
		return storage.NewInt(x)
	case float64:
		return storage.NewFloat(x)
	case string:
		return storage.NewString(x)
	case time.Time:
		return storage.NewDate(x.Unix() / 86400)
	default:
		return storage.Null
	}
}
