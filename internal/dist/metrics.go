package dist

import (
	"fmt"

	"bufferdb/internal/obsv"
)

// The coordinator feeds the same process-wide registry the engine and the
// serving layer do, so one /metrics scrape covers the whole deployment:
//
//	bufferdb_coord_queries_total{type="..."}        scatter | single | rejected
//	bufferdb_coord_shard_scans_total{shard=".."}    remote scans started, per shard
//	bufferdb_coord_shard_errors_total{shard=".."}   failures attributed to a shard
//	bufferdb_coord_hedged_total{shard=".."}         hedge attempts fired
//	bufferdb_coord_shard_first_row_seconds{shard=".."}  open → first row (health)
//	bufferdb_coord_shard_stream_seconds{shard=".."}     open → close, per scan
//	bufferdb_coord_merge_close_seconds              scatter cursor teardown latency

// latencyBuckets spans sub-millisecond in-process shards through multi-second
// wide-area scatters.
var latencyBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

func metricScatter() *obsv.Counter {
	return obsv.Default.Counter(`bufferdb_coord_queries_total{type="scatter"}`)
}

func metricSingleShard() *obsv.Counter {
	return obsv.Default.Counter(`bufferdb_coord_queries_total{type="single"}`)
}

func metricPlanRejected() *obsv.Counter {
	return obsv.Default.Counter(`bufferdb_coord_queries_total{type="rejected"}`)
}

func metricShardScans(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_shard_scans_total{shard=%q}", addr))
}

func metricShardErrors(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_shard_errors_total{shard=%q}", addr))
}

func metricHedged(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_hedged_total{shard=%q}", addr))
}

// metricShardFirstRow is the per-shard health signal the sidecar exports:
// time from scan open to the first gathered row.
func metricShardFirstRow(addr string) *obsv.Histogram {
	return obsv.Default.Histogram(
		fmt.Sprintf("bufferdb_coord_shard_first_row_seconds{shard=%q}", addr), latencyBuckets)
}

func metricShardLatency(addr string) *obsv.Histogram {
	return obsv.Default.Histogram(
		fmt.Sprintf("bufferdb_coord_shard_stream_seconds{shard=%q}", addr), latencyBuckets)
}

func metricMergeClose() *obsv.Histogram {
	return obsv.Default.Histogram("bufferdb_coord_merge_close_seconds", latencyBuckets)
}
