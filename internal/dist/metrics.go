package dist

import (
	"fmt"

	"bufferdb/internal/obsv"
)

// The coordinator feeds the same process-wide registry the engine and the
// serving layer do, so one /metrics scrape covers the whole deployment:
//
//	bufferdb_coord_queries_total{type="..."}        scatter | single | rejected
//	bufferdb_coord_shard_scans_total{shard=".."}    remote scans started, per shard
//	bufferdb_coord_shard_errors_total{shard=".."}   failures attributed to a shard
//	bufferdb_coord_hedged_total{shard=".."}         hedge attempts fired
//	bufferdb_coord_failovers_total{shard=".."}      legs failed over away from a node
//	bufferdb_coord_breaker_trips_total{shard=".."}  circuit-open transitions, per node
//	bufferdb_coord_breaker_state{shard=".."}        gauge: 0 closed, 1 open, 2 half-open
//	bufferdb_coord_probes_total{shard="..",outcome=".."}  half-open probes, recovered|failed
//	bufferdb_coord_leg_replays_total{shard=".."}    mid-stream legs replayed on a replica
//	bufferdb_coord_rescatters_total                 full scatter restarts
//	bufferdb_coord_shard_first_row_seconds{shard=".."}  open → first row (health)
//	bufferdb_coord_shard_stream_seconds{shard=".."}     open → close, per scan
//	bufferdb_coord_merge_close_seconds              scatter cursor teardown latency

// latencyBuckets spans sub-millisecond in-process shards through multi-second
// wide-area scatters.
var latencyBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

func metricScatter() *obsv.Counter {
	return obsv.Default.Counter(`bufferdb_coord_queries_total{type="scatter"}`)
}

func metricSingleShard() *obsv.Counter {
	return obsv.Default.Counter(`bufferdb_coord_queries_total{type="single"}`)
}

func metricPlanRejected() *obsv.Counter {
	return obsv.Default.Counter(`bufferdb_coord_queries_total{type="rejected"}`)
}

func metricShardScans(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_shard_scans_total{shard=%q}", addr))
}

func metricShardErrors(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_shard_errors_total{shard=%q}", addr))
}

func metricHedged(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_hedged_total{shard=%q}", addr))
}

func metricFailovers(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_failovers_total{shard=%q}", addr))
}

func metricBreakerTrips(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_breaker_trips_total{shard=%q}", addr))
}

// metricBreakerState mirrors one node's breaker position for dashboards:
// 0 closed, 1 open, 2 half-open.
func metricBreakerState(addr string) *obsv.Gauge {
	return obsv.Default.Gauge(fmt.Sprintf("bufferdb_coord_breaker_state{shard=%q}", addr))
}

func metricProbes(addr, outcome string) *obsv.Counter {
	return obsv.Default.Counter(
		fmt.Sprintf("bufferdb_coord_probes_total{shard=%q,outcome=%q}", addr, outcome))
}

func metricLegReplays(addr string) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf("bufferdb_coord_leg_replays_total{shard=%q}", addr))
}

func metricRescatters() *obsv.Counter {
	return obsv.Default.Counter("bufferdb_coord_rescatters_total")
}

// metricShardFirstRow is the per-shard health signal the sidecar exports:
// time from scan open to the first gathered row.
func metricShardFirstRow(addr string) *obsv.Histogram {
	return obsv.Default.Histogram(
		fmt.Sprintf("bufferdb_coord_shard_first_row_seconds{shard=%q}", addr), latencyBuckets)
}

func metricShardLatency(addr string) *obsv.Histogram {
	return obsv.Default.Histogram(
		fmt.Sprintf("bufferdb_coord_shard_stream_seconds{shard=%q}", addr), latencyBuckets)
}

func metricMergeClose() *obsv.Histogram {
	return obsv.Default.Histogram("bufferdb_coord_merge_close_seconds", latencyBuckets)
}
