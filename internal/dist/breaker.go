package dist

import (
	"sync"
	"time"
)

// breakerState is one circuit breaker's position in the
// closed → open → half-open cycle.
type breakerState int

const (
	// breakerClosed: the node is believed healthy; route freely.
	breakerClosed breakerState = iota
	// breakerOpen: the node ate too many consecutive transport failures;
	// don't route to it until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen: the cooldown elapsed and one probe query is testing
	// the node; everything else keeps avoiding it until the probe reports.
	breakerHalfOpen
)

// String names a state for logs and the health report.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-node circuit breaker fed by transport-failure
// classification: server-typed errors prove the node alive and never trip
// it. Closed → open after threshold consecutive transport failures; open →
// half-open after cooldown, admitting exactly one in-flight probe; the
// probe's outcome closes or re-opens the circuit. Safe for concurrent use.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive transport failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may route to this node, and whether that
// request is the half-open probe (whose outcome decides the circuit). An
// open breaker past its cooldown transitions to half-open here, claiming
// the caller as the probe.
func (b *breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// success records a request that proved the node alive — a stream that
// started, or a server-typed error (the node answered). It resets the
// failure streak and, for a probe, closes the circuit.
func (b *breaker) success(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if probe {
		b.probing = false
	}
	b.state = breakerClosed
}

// failure records a transport failure. A failed probe re-opens the circuit
// immediately; otherwise the consecutive-failure streak grows and opens it
// at the threshold. Returns true when this call tripped the circuit open.
func (b *breaker) failure(probe bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		b.state = breakerOpen
		b.openedAt = time.Now()
		return true
	}
	if b.state == breakerOpen {
		return false
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.failures = 0
		return true
	}
	return false
}

// snapshot returns the current state without side effects (no half-open
// transition), for the health report and the state gauge.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
