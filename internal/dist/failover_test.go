package dist_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/dist"
	"bufferdb/internal/obsv"
	"bufferdb/internal/server"
	"bufferdb/internal/shard"
)

// startReplicaNode boots one daemon hosting every slice the rotated
// placement assigns to node under n/rf: its primary slice plus the rf-1
// preceding ones. listen is "127.0.0.1:0" for a fresh port or a concrete
// address when a test restarts a killed node in place.
func startReplicaNode(t testing.TB, node, n, rf int, listen string, hook func(string) *bufferdb.FaultInjector) (*server.Server, string) {
	t.Helper()
	dbs, err := bufferdb.OpenTPCHReplicas(testSF, bufferdb.Options{
		ShardCount:           n,
		CardinalityThreshold: 100,
		MemoryLimit:          256 << 20,
	}, shard.Slices(node, n, rf))
	if err != nil {
		t.Fatalf("OpenTPCHReplicas node %d (%d/%d): %v", node, n, rf, err)
	}
	srv, err := server.New(server.Config{DB: dbs[node], Slices: dbs, FaultHook: hook})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	var l net.Listener
	// A node restarting on its old address can race the kernel releasing
	// the port; retry briefly.
	for deadline := time.Now().Add(5 * time.Second); ; {
		l, err = net.Listen("tcp", listen)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", listen, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, l.Addr().String()
}

// startReplicaFleet boots an n-node fleet at replication factor rf and a
// coordinator over it. hooks attaches fault injectors per node index.
func startReplicaFleet(t testing.TB, n, rf int, cfg dist.Config, hooks map[int]func(string) *bufferdb.FaultInjector) *shardFleet {
	t.Helper()
	f := &shardFleet{}
	for i := 0; i < n; i++ {
		srv, addr := startReplicaNode(t, i, n, rf, "127.0.0.1:0", hooks[i])
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, addr)
	}
	cfg.Shards = f.addrs
	cfg.Replication = rf
	co, err := dist.Open(cfg)
	if err != nil {
		t.Fatalf("dist.Open: %v", err)
	}
	t.Cleanup(func() { co.Close() })
	f.co = co
	return f
}

// kill force-closes a server's listeners and connections, the in-process
// equivalent of kill -9: streams break mid-frame, nothing drains.
func kill(srv *server.Server) {
	killed, cancel := context.WithCancel(context.Background())
	cancel()
	_ = srv.Shutdown(killed)
}

// slowLineitem injects per-row scan latency so a small slice stays
// genuinely mid-flight long enough for a kill to land mid-stream instead of
// after the rows reached the kernel socket buffers.
func slowLineitem(sql string) *bufferdb.FaultInjector {
	if !strings.Contains(sql, "lineitem") {
		return nil
	}
	return bufferdb.NewFaultInjector(1, bufferdb.Fault{
		Match: "Scan", Kind: bufferdb.FaultLatency,
		After: 100, Every: 10, Latency: 2 * time.Millisecond,
	})
}

// waitSettled polls until the coordinator's tracked bytes drain and
// goroutines return to baseline.
func waitSettled(t *testing.T, co *dist.Coordinator, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) &&
		(co.TrackedBytes() != 0 || runtime.NumGoroutine() > baseline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := co.TrackedBytes(); n != 0 {
		t.Fatalf("coordinator tracked bytes after chaos = %d, want 0", n)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak after chaos: %d running, baseline %d", n, baseline)
	}
}

// TestChaosFailoverMidStreamScan is the replication acceptance gate: losing
// one node of a 3-node RF=2 fleet mid-stream must not fail the query or
// change one byte of its result. The lost node's leg replays on the
// surviving replica, skipping the rows the merge already consumed.
func TestChaosFailoverMidStreamScan(t *testing.T) {
	fleet := startReplicaFleet(t, 3, 2, dist.Config{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // keep the breaker open for the health assertions
	}, map[int]func(string) *bufferdb.FaultInjector{1: slowLineitem})
	ref := singleNode(t)
	q := `SELECT l_orderkey, l_quantity, l_extendedprice, l_comment FROM lineitem`

	want, err := ref.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("single-node: %v", err)
	}
	if h := fleet.co.Health(); h.Status != "pass" {
		t.Fatalf("healthy fleet reports %q (%s)", h.Status, h.Detail)
	}
	baseline := runtime.NumGoroutine()

	rows, err := fleet.co.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var got [][]any
	for i := 0; i < 10 && rows.Next(); i++ {
		got = append(got, append([]any(nil), rows.Row()...))
	}
	// Node 1 serves slice 1's leg (primary placement) and replicates slice
	// 0. Killing it mid-stream forces slice 1 onto node 2.
	kill(fleet.servers[1])
	for rows.Next() {
		got = append(got, append([]any(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream did not survive node kill: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	compareRows(t, got, want.Rows, false)

	if h := fleet.co.Health(); h.Status != "warn" {
		t.Fatalf("health after single-node loss = %q (%s), want warn", h.Status, h.Detail)
	}
	waitSettled(t, fleet.co, baseline)
}

// TestChaosFailoverAggRestart kills a node while its leg streams partial
// aggregates. Group order is nondeterministic, so leg replay cannot line up
// with what the merge consumed; the coordinator must restart the whole
// scatter — transparently, since the blocking final aggregate surfaced
// nothing yet — and the answer must still match single-node.
func TestChaosFailoverAggRestart(t *testing.T) {
	slowAgg := func(sql string) *bufferdb.FaultInjector {
		if !strings.Contains(sql, "lineitem") {
			return nil
		}
		return bufferdb.NewFaultInjector(1, bufferdb.Fault{
			Match: "Aggregate", Kind: bufferdb.FaultLatency,
			After: 10, Every: 1, Latency: time.Millisecond,
		})
	}
	fleet := startReplicaFleet(t, 3, 2, dist.Config{BreakerThreshold: 1},
		map[int]func(string) *bufferdb.FaultInjector{1: slowAgg})
	ref := singleNode(t)
	q := `SELECT l_orderkey, COUNT(*), SUM(l_extendedprice) FROM lineitem GROUP BY l_orderkey`

	want, err := ref.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("single-node: %v", err)
	}
	baseline := runtime.NumGoroutine()
	rescattersBefore := obsv.Default.Counter("bufferdb_coord_rescatters_total").Value()

	rows, err := fleet.co.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// The final aggregate blocks until every leg drains, so the kill must
	// come from the side, mid-aggregation. The victim streams ~1000 groups
	// at 1ms each, and the server flushes 256-row batches, so the first
	// rows reach the coordinator around 270ms; a kill at 450ms lands after
	// the leg has emitted but well before it finishes.
	time.AfterFunc(450*time.Millisecond, func() { kill(fleet.servers[1]) })
	got := drainCoord(t, rows)
	compareRows(t, got, want.Rows, false)

	if after := obsv.Default.Counter("bufferdb_coord_rescatters_total").Value(); after == rescattersBefore {
		t.Logf("note: kill landed before the victim leg emitted; failover used leg replay, not a rescatter")
	}
	waitSettled(t, fleet.co, baseline)
}

// TestChaosFailoverAllReplicasDown checks the fail-fast contract: when every
// replica of a slice is gone, the query fails with a ShardError naming that
// slice and wrapping ErrShardUnavailable — it does not hang or retry
// forever — and the fleet reports unhealthy.
func TestChaosFailoverAllReplicasDown(t *testing.T) {
	fleet := startReplicaFleet(t, 3, 2, dist.Config{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Client:           client.Config{DialTimeout: time.Second, BusyRetries: -1},
	}, nil)
	baseline := runtime.NumGoroutine()

	// Slice 1 lives on nodes 1 and 2; killing both erases it.
	kill(fleet.servers[1])
	kill(fleet.servers[2])

	rows, err := fleet.co.Query(context.Background(),
		`SELECT l_orderkey, l_quantity FROM lineitem`)
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if err == nil {
		t.Fatal("query over an erased slice succeeded")
	}
	var se *dist.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *dist.ShardError", err, err)
	}
	if se.Shard != 1 {
		t.Fatalf("error attributed to slice %d (%s), want 1", se.Shard, se.Addr)
	}
	if !errors.Is(err, bufferdb.ErrShardUnavailable) {
		t.Fatalf("error does not wrap ErrShardUnavailable: %v", err)
	}

	if h := fleet.co.Health(); h.Status != "fail" {
		t.Fatalf("health with an erased slice = %q (%s), want fail", h.Status, h.Detail)
	}
	waitSettled(t, fleet.co, baseline)
}

// TestBreakerHalfOpenRecovery kills a node, lets its breaker open, restarts
// the node in place, and checks traffic brings the fleet back to full
// health through the half-open probe — no manual reset.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	fleet := startReplicaFleet(t, 2, 2, dist.Config{
		BreakerThreshold: 1,
		BreakerCooldown:  200 * time.Millisecond,
		Client:           client.Config{DialTimeout: time.Second, BusyRetries: -1},
	}, nil)
	q := `SELECT COUNT(*) FROM lineitem`

	runOnce := func() error {
		rows, err := fleet.co.Query(context.Background(), q)
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		defer rows.Close()
		return rows.Err()
	}

	kill(fleet.servers[1])
	if err := runOnce(); err != nil {
		t.Fatalf("query after node loss: %v", err)
	}
	if h := fleet.co.Health(); h.Status != "warn" {
		t.Fatalf("health after node loss = %q (%s), want warn", h.Status, h.Detail)
	}

	// Restart the node on its old address; the shard map does not change.
	_, _ = startReplicaNode(t, 1, 2, 2, fleet.addrs[1], nil)

	// Drive traffic until a probe closes the breaker again.
	deadline := time.Now().Add(10 * time.Second)
	for fleet.co.Health().Status != "pass" {
		if time.Now().After(deadline) {
			h := fleet.co.Health()
			t.Fatalf("fleet never recovered: %q (%s)", h.Status, h.Detail)
		}
		if err := runOnce(); err != nil {
			t.Fatalf("query during recovery: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicaFleetEquivalence runs every scatter shape over a replicated
// healthy fleet: slice addressing must be invisible when nothing fails.
func TestReplicaFleetEquivalence(t *testing.T) {
	fleet := startReplicaFleet(t, 3, 2, dist.Config{}, nil)
	ref := singleNode(t)

	for _, q := range equivalenceQueries {
		t.Run(q.name, func(t *testing.T) {
			want, err := ref.Query(context.Background(), q.sql)
			if err != nil {
				t.Fatalf("single-node: %v", err)
			}
			rows, err := fleet.co.Query(context.Background(), q.sql)
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			compareRows(t, drainCoord(t, rows), want.Rows, q.ordered)
		})
	}
	if n := fleet.co.TrackedBytes(); n != 0 {
		t.Fatalf("tracked bytes = %d, want 0", n)
	}
}

// TestReplicaTables checks the coordinator's wire catalog counts each slice
// exactly once on a replicated fleet instead of double-counting replicas.
func TestReplicaTables(t *testing.T) {
	fleet := startReplicaFleet(t, 3, 2, dist.Config{}, nil)
	ref := singleNode(t)

	srv, err := dist.NewServer(dist.ServerConfig{Coordinator: fleet.co})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})

	cl, err := client.Dial(l.Addr().String(), client.Config{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	infos, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	counts := map[string]uint64{}
	for _, ti := range infos {
		counts[ti.Name] = ti.Rows
	}
	for _, tbl := range []string{"lineitem", "orders", "customer", "nation"} {
		want, err := ref.RowCount(tbl)
		if err != nil {
			t.Fatalf("RowCount(%s): %v", tbl, err)
		}
		if counts[tbl] != uint64(want) {
			t.Fatalf("%s rows = %d, want %d (replica double-count?)", tbl, counts[tbl], want)
		}
	}
}
