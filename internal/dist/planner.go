package dist

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bufferdb"
	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
)

// ErrNotDistributable is wrapped when a query's joins cannot run
// shard-local under the shard map: it references sharded tables that are
// not equi-joined on their sharding columns, so no scatter produces the
// single-node answer. The dynamic error names the offending tables.
var ErrNotDistributable = errors.New("dist: query is not distributable under the shard map")

// distPlan is the coordinator's compiled form of one query.
type distPlan struct {
	// single routes the original SQL to one shard (replicated-only query).
	single bool

	// shardSQL is the rewritten text every shard executes.
	shardSQL string
	// shardSchema is the schema of one shard's result stream.
	shardSchema storage.Schema
	// merge builds the coordinator pipeline above the per-shard scans.
	merge func(parts []exec.Operator) (exec.Operator, error)
	// replayable marks legs whose shard streams are deterministic
	// (sequential scans through a partition-ordered exchange), so a
	// mid-stream failover can re-issue the leg on a replica and skip the
	// rows already merged. Aggregate legs are not replayable: the shard's
	// group stream order is not stable across runs, so a mid-stream loss
	// after rows flowed forces a full scatter restart instead.
	replayable bool
}

// plan analyzes one query against the shard map. Queries touching only
// replicated tables pass through to a single shard; queries over sharded
// tables are checked for co-location and rewritten into a scatter phase
// (shard SQL) plus a gather phase (local merge pipeline).
func (c *Coordinator) plan(sqlText string) (*distPlan, error) {
	if sql.IsInsert(sqlText) {
		return nil, fmt.Errorf("dist: INSERT is not supported on a sharded deployment: %w", bufferdb.ErrReadOnly)
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}

	refs := append([]sql.TableRef{}, stmt.From...)
	for _, j := range stmt.Joins {
		refs = append(refs, j.Table)
	}
	var shardedRefs []sql.TableRef
	for _, r := range refs {
		if c.smap.Sharded(r.Name) {
			shardedRefs = append(shardedRefs, r)
		}
	}
	if len(shardedRefs) == 0 {
		return &distPlan{single: true}, nil
	}
	if err := c.checkColocated(stmt, refs, shardedRefs); err != nil {
		return nil, err
	}

	hasAgg := len(stmt.GroupBy) > 0
	for _, item := range stmt.Items {
		if !item.Star && sql.ContainsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		return c.planAggregate(stmt)
	}
	return c.planScan(stmt)
}

// --- co-location ---------------------------------------------------------

// checkColocated verifies every sharded table's sharding column sits in one
// equivalence class of the query's equi-join conditions, so each shard's
// slice joins only with itself and the scatter is lossless.
func (c *Coordinator) checkColocated(stmt *sql.SelectStmt, refs, shardedRefs []sql.TableRef) error {
	if len(shardedRefs) == 1 {
		return nil
	}
	uf := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		r, ok := uf[x]
		if !ok || r == x {
			uf[x] = x
			return x
		}
		root := find(r)
		uf[x] = root
		return root
	}
	union := func(a, b string) { uf[find(a)] = find(b) }

	keyOf := func(id *sql.Ident) string {
		b := strings.ToLower(id.Table)
		if b == "" {
			// Unqualified: resolve against the referenced tables' schemas.
			for _, r := range refs {
				t, err := c.cat.Table(r.Name)
				if err != nil {
					continue
				}
				if i, _ := t.Schema().ColumnIndex("", id.Name); i >= 0 {
					b = strings.ToLower(r.Binding())
					break
				}
			}
		}
		return b + "." + strings.ToLower(id.Name)
	}

	var conjuncts []sql.Node
	if stmt.Where != nil {
		conjuncts = splitAnd(stmt.Where)
	}
	for _, j := range stmt.Joins {
		conjuncts = append(conjuncts, splitAnd(j.On)...)
	}
	for _, cj := range conjuncts {
		b, ok := cj.(*sql.BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		l, lok := b.L.(*sql.Ident)
		r, rok := b.R.(*sql.Ident)
		if lok && rok {
			union(keyOf(l), keyOf(r))
		}
	}

	root := ""
	var names []string
	for _, r := range shardedRefs {
		names = append(names, r.Name)
		key := strings.ToLower(r.Binding()) + "." + strings.ToLower(c.smap.ShardColumn(r.Name))
		if root == "" {
			root = find(key)
		} else if find(key) != root {
			return fmt.Errorf("%w: tables %s are not equi-joined on their sharding columns",
				ErrNotDistributable, strings.Join(names, ", "))
		}
	}
	return nil
}

// splitAnd flattens a conjunction into its AND-ed parts.
func splitAnd(n sql.Node) []sql.Node {
	if b, ok := n.(*sql.BinaryExpr); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sql.Node{n}
}

// --- non-aggregate scatter ------------------------------------------------

// planScan scatters a projection/filter query. Without ORDER BY the merged
// stream concatenates shard streams in shard order; with ORDER BY the
// coordinator re-sorts the gathered rows (shards keep ORDER BY only when a
// LIMIT rides on it, as a top-N pushdown that bounds what each shard
// ships).
func (c *Coordinator) planScan(stmt *sql.SelectStmt) (*distPlan, error) {
	shardStmt := *stmt
	if len(stmt.OrderBy) > 0 && stmt.Limit < 0 {
		// Sorting shard-side would be wasted work: the coordinator must
		// re-sort the merged stream anyway.
		shardStmt.OrderBy = nil
	}
	shardSQL := render(&shardStmt)
	schema, err := c.validateShardSQL(shardSQL)
	if err != nil {
		return nil, err
	}

	var keys []exec.SortKey
	if len(stmt.OrderBy) > 0 {
		keys, err = orderKeysOver(stmt.OrderBy, schema)
		if err != nil {
			return nil, err
		}
	}
	limit := stmt.Limit
	return &distPlan{
		shardSQL:    shardSQL,
		shardSchema: schema,
		replayable:  true,
		merge: func(parts []exec.Operator) (exec.Operator, error) {
			ex, err := exec.NewExchange(parts)
			if err != nil {
				return nil, err
			}
			var node exec.Operator = ex
			if len(keys) > 0 {
				node = exec.NewSort(node, keys, nil)
			}
			if limit >= 0 {
				node = exec.NewLimit(node, limit)
			}
			return node, nil
		},
	}, nil
}

// --- aggregate scatter ----------------------------------------------------

// partialAgg is one original aggregate call and its shard-side partials.
type partialAgg struct {
	fn  string // COUNT | COUNT* | SUM | AVG | MIN | MAX
	pos int    // merged-aggregate position of the (first) partial
}

// planAggregate rewrites an aggregation into shard-local partials plus a
// coordinator merge:
//
//	COUNT(*) / COUNT(x) → shard COUNT, merged with SUM (exact, integer)
//	SUM / MIN / MAX     → shard partial, merged with the same function
//	AVG(x)              → shard SUM(x), COUNT(x); merged sums divided
//
// Group-by expressions compute shard-side (aliased __g0, __g1, …) so the
// coordinator groups on opaque columns; the final projection re-applies the
// original select-list shape — including arithmetic over aggregates — and
// restores the single-node output names.
func (c *Coordinator) planAggregate(stmt *sql.SelectStmt) (*distPlan, error) {
	var shardItems []sql.SelectItem
	groupKey := map[string]int{}
	for i, g := range stmt.GroupBy {
		groupKey[sql.NodeString(g)] = i
		shardItems = append(shardItems, sql.SelectItem{Expr: g, Alias: fmt.Sprintf("__g%d", i)})
	}
	nGroups := len(stmt.GroupBy)

	// Discover aggregate calls in the analyzer's order (select-list order,
	// descending only through binary/unary arithmetic, deduplicated by
	// rendering) so partial positions line up with single-node planning.
	var aggs []partialAgg
	aggKey := map[string]int{}
	nPartials := 0
	var collect func(n sql.Node) error
	collect = func(n sql.Node) error {
		switch e := n.(type) {
		case *sql.FuncCall:
			key := sql.NodeString(e)
			if _, ok := aggKey[key]; ok {
				return nil
			}
			aggKey[key] = len(aggs)
			switch e.Name {
			case "COUNT", "SUM", "MIN", "MAX":
				fn := e.Name
				if e.Name == "COUNT" && e.Star {
					fn = "COUNT*"
				}
				aggs = append(aggs, partialAgg{fn: fn, pos: nPartials})
				shardItems = append(shardItems, sql.SelectItem{
					Expr: e, Alias: fmt.Sprintf("__a%d", nPartials)})
				nPartials++
			case "AVG":
				aggs = append(aggs, partialAgg{fn: "AVG", pos: nPartials})
				shardItems = append(shardItems,
					sql.SelectItem{Expr: &sql.FuncCall{Name: "SUM", Arg: e.Arg},
						Alias: fmt.Sprintf("__a%d_s", nPartials)},
					sql.SelectItem{Expr: &sql.FuncCall{Name: "COUNT", Arg: e.Arg},
						Alias: fmt.Sprintf("__a%d_c", nPartials)})
				nPartials += 2
			default:
				return fmt.Errorf("dist: unknown aggregate %s", e.Name)
			}
			return nil
		case *sql.BinaryExpr:
			if err := collect(e.L); err != nil {
				return err
			}
			return collect(e.R)
		case *sql.UnaryExpr:
			return collect(e.E)
		default:
			if sql.ContainsAggregate(n) {
				return fmt.Errorf("dist: unsupported select-list expression %s over aggregation", sql.NodeString(n))
			}
			return nil
		}
	}
	for _, item := range stmt.Items {
		if item.Star {
			return nil, fmt.Errorf("dist: SELECT * cannot be combined with aggregation")
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("dist: GROUP BY without aggregates is unsupported")
	}

	shardStmt := sql.SelectStmt{
		Items:   shardItems,
		From:    stmt.From,
		Joins:   stmt.Joins,
		Where:   stmt.Where,
		GroupBy: stmt.GroupBy,
		Limit:   -1,
	}
	shardSQL := render(&shardStmt)
	schema, err := c.validateShardSQL(shardSQL)
	if err != nil {
		return nil, err
	}

	// Merge aggregates: one spec per shard partial, re-aggregating the
	// partial column under the combining function.
	var mergeAggs []expr.AggSpec
	for _, pa := range aggs {
		mk := func(fn expr.AggFunc, pos int) {
			col := nGroups + pos
			mergeAggs = append(mergeAggs, expr.AggSpec{
				Func: fn,
				Arg:  expr.NewColRef(col, schema[col].Name, schema[col].Type),
				As:   schema[col].Name,
			})
		}
		switch pa.fn {
		case "COUNT", "COUNT*", "SUM":
			mk(expr.AggSum, pa.pos)
		case "MIN":
			mk(expr.AggMin, pa.pos)
		case "MAX":
			mk(expr.AggMax, pa.pos)
		case "AVG":
			mk(expr.AggSum, pa.pos)   // __aN_s
			mk(expr.AggSum, pa.pos+1) // __aN_c
		}
	}
	groupRefs := make([]expr.Expr, nGroups)
	for i := 0; i < nGroups; i++ {
		groupRefs[i] = expr.NewColRef(i, schema[i].Name, schema[i].Type)
	}

	// Precompute the final projection over the merged-aggregate schema, and
	// the single-node output names.
	probe, err := exec.NewAggregate(stubOp{schema: schema}, groupRefs, mergeAggs, nil)
	if err != nil {
		return nil, err
	}
	msch := probe.Schema()
	var finalExprs []expr.Expr
	var names []string
	for _, item := range stmt.Items {
		e, err := finalExpr(item.Expr, groupKey, aggKey, aggs, nGroups, msch)
		if err != nil {
			return nil, err
		}
		finalExprs = append(finalExprs, e)
		name := item.Alias
		if name == "" {
			name = sql.NodeString(item.Expr)
		}
		names = append(names, name)
	}
	outSchema := make(storage.Schema, len(finalExprs))
	for i, e := range finalExprs {
		outSchema[i] = storage.Column{Name: names[i], Type: e.Type()}
	}
	var keys []exec.SortKey
	if len(stmt.OrderBy) > 0 {
		keys, err = orderKeysOver(stmt.OrderBy, outSchema)
		if err != nil {
			return nil, err
		}
	}
	limit := stmt.Limit

	return &distPlan{
		shardSQL:    shardSQL,
		shardSchema: schema,
		merge: func(parts []exec.Operator) (exec.Operator, error) {
			ex, err := exec.NewExchange(parts)
			if err != nil {
				return nil, err
			}
			agg, err := exec.NewAggregate(ex, groupRefs, mergeAggs, nil)
			if err != nil {
				return nil, err
			}
			var node exec.Operator
			node, err = exec.NewProject(agg, finalExprs, names, nil)
			if err != nil {
				return nil, err
			}
			if len(keys) > 0 {
				node = exec.NewSort(node, keys, nil)
			}
			if limit >= 0 {
				node = exec.NewLimit(node, limit)
			}
			return node, nil
		},
	}, nil
}

// finalExpr rewrites one select-list expression over the merged-aggregate
// schema: group keys and aggregate calls become column references (AVG
// becomes merged-sum ÷ merged-count), arithmetic re-applies on top.
func finalExpr(n sql.Node, groupKey, aggKey map[string]int, aggs []partialAgg,
	nGroups int, msch storage.Schema) (expr.Expr, error) {

	key := sql.NodeString(n)
	if i, ok := groupKey[key]; ok {
		return expr.NewColRef(i, msch[i].Name, msch[i].Type), nil
	}
	if i, ok := aggKey[key]; ok {
		pa := aggs[i]
		ref := func(off int) *expr.ColRef {
			pos := nGroups + pa.pos + off
			return expr.NewColRef(pos, msch[pos].Name, msch[pos].Type)
		}
		if pa.fn == "AVG" {
			return expr.NewBinary(expr.OpDiv, ref(0), ref(1))
		}
		return ref(0), nil
	}
	switch e := n.(type) {
	case *sql.BinaryExpr:
		l, err := finalExpr(e.L, groupKey, aggKey, aggs, nGroups, msch)
		if err != nil {
			return nil, err
		}
		r, err := finalExpr(e.R, groupKey, aggKey, aggs, nGroups, msch)
		if err != nil {
			return nil, err
		}
		return binaryExpr(e.Op, l, r)
	case *sql.UnaryExpr:
		inner, err := finalExpr(e.E, groupKey, aggKey, aggs, nGroups, msch)
		if err != nil {
			return nil, err
		}
		if e.Op == "-" {
			return expr.NewNeg(inner)
		}
		return expr.NewNot(inner)
	case *sql.NumberLit:
		if e.IsInt {
			v, err := strconv.ParseInt(e.Text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dist: bad integer literal %q", e.Text)
			}
			return expr.NewConst(storage.NewInt(v)), nil
		}
		v, err := strconv.ParseFloat(e.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: bad numeric literal %q", e.Text)
		}
		return expr.NewConst(storage.NewFloat(v)), nil
	case *sql.StringLit:
		return expr.NewConst(storage.NewString(e.Val)), nil
	case *sql.DateLit:
		d, err := storage.ParseDate(e.Val)
		if err != nil {
			return nil, err
		}
		return expr.NewConst(d), nil
	case *sql.IntervalLit:
		return expr.NewConst(storage.NewInt(e.Days)), nil
	case *sql.NullLit:
		return expr.NewConst(storage.Null), nil
	case *sql.BoolLit:
		return expr.NewConst(storage.NewBool(e.Val)), nil
	case *sql.Ident:
		return nil, fmt.Errorf("dist: column %s must appear in GROUP BY or inside an aggregate", key)
	default:
		return nil, fmt.Errorf("dist: unsupported select-list expression %s over aggregation", key)
	}
}

// binaryExpr maps an AST operator onto a typed expression.
func binaryExpr(op string, l, r expr.Expr) (expr.Expr, error) {
	var bop expr.BinOp
	switch op {
	case "+":
		bop = expr.OpAdd
	case "-":
		bop = expr.OpSub
	case "*":
		bop = expr.OpMul
	case "/":
		bop = expr.OpDiv
	case "=":
		bop = expr.OpEq
	case "<>":
		bop = expr.OpNe
	case "<":
		bop = expr.OpLt
	case "<=":
		bop = expr.OpLe
	case ">":
		bop = expr.OpGt
	case ">=":
		bop = expr.OpGe
	case "AND":
		bop = expr.OpAnd
	case "OR":
		bop = expr.OpOr
	default:
		return nil, fmt.Errorf("dist: unknown operator %q", op)
	}
	return expr.NewBinary(bop, l, r)
}

// orderKeysOver resolves ORDER BY items over an output schema, mirroring
// the single-node analyzer: 1-based ordinals, output-column names, or the
// rendering of the select item.
func orderKeysOver(items []sql.OrderItem, sch storage.Schema) ([]exec.SortKey, error) {
	var keys []exec.SortKey
	for _, item := range items {
		var ref *expr.ColRef
		switch e := item.Expr.(type) {
		case *sql.NumberLit:
			n, err := strconv.Atoi(e.Text)
			if err != nil || n < 1 || n > len(sch) {
				return nil, fmt.Errorf("dist: ORDER BY ordinal %s out of range", e.Text)
			}
			ref = expr.NewColRef(n-1, sch[n-1].Name, sch[n-1].Type)
		default:
			name := sql.NodeString(item.Expr)
			if id, ok := item.Expr.(*sql.Ident); ok && id.Table == "" {
				name = id.Name
			}
			for i, col := range sch {
				if strings.EqualFold(col.Name, name) {
					ref = expr.NewColRef(i, col.Name, col.Type)
					break
				}
			}
			if ref == nil {
				return nil, fmt.Errorf("dist: ORDER BY item %q not in select list", name)
			}
		}
		keys = append(keys, exec.SortKey{Expr: ref, Desc: item.Desc})
	}
	return keys, nil
}

// validateShardSQL re-parses and analyzes the rendered shard statement
// against the schema-only catalog: the round trip proves the renderer's
// output is valid for the shards' own parsers, and the resulting plan's
// schema is exactly what each shard will stream back.
func (c *Coordinator) validateShardSQL(shardSQL string) (storage.Schema, error) {
	p, err := sql.PlanQuery(shardSQL, c.cat, sql.Options{})
	if err != nil {
		return nil, fmt.Errorf("dist: shard statement %q failed validation: %w", shardSQL, err)
	}
	return p.Schema(), nil
}

// stubOp is a schema-only operator used to probe derived schemas at plan
// time; it is never opened.
type stubOp struct {
	schema storage.Schema
}

func (s stubOp) Open(*exec.Context) error                { return errors.New("dist: stub operator") }
func (s stubOp) Next(*exec.Context) (storage.Row, error) { return nil, errors.New("dist: stub operator") }
func (s stubOp) Close(*exec.Context) error               { return nil }
func (s stubOp) Schema() storage.Schema                  { return s.schema }
func (s stubOp) Children() []exec.Operator               { return nil }
func (s stubOp) Name() string                            { return "Stub" }
func (s stubOp) Module() *codemodel.Module               { return nil }
func (s stubOp) Blocking() bool                          { return false }
