// Package dist is bufferdb's scatter-gather tier: a coordinator that plans
// distributed queries over hash-sharded bufferdbd nodes and merges their
// partial streams locally. It is the paper's buffering discipline applied
// one level up — shards produce long runs of partial results, the
// coordinator gathers partition-ordered streams through the same Exchange
// operator the single-node engine uses for parallel scans, and the final
// aggregate/sort/limit runs locally on the merged stream.
//
// Planning is source-to-source: the coordinator parses the query with the
// engine's own parser, decides distributability against the shard map,
// rewrites aggregates into shard-local partials (COUNT→SUM, AVG→SUM+COUNT),
// renders the rewritten AST back to SQL, and ships it to every shard over
// the wire protocol with the caller's engine selection, deadline, and
// memory budget forwarded intact. Queries touching only replicated tables
// skip the scatter entirely and route, round-robin, to a single shard.
//
// Failure semantics: a shard that cannot be reached or dies mid-stream
// surfaces as a *ShardError wrapping bufferdb.ErrShardUnavailable; closing
// the coordinator cursor cancels the sibling shard streams (each remote
// scan's Cancel frame frees the shard's admission slot and tracked memory).
// Engine sentinels a shard reports — busy, deadline, memory budget — pass
// through the ShardError's unwrap chain, so errors.Is works at the
// coordinator exactly as it does against one node.
package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/exec"
	"bufferdb/internal/shard"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
	"bufferdb/internal/wire"
)

// Config configures a Coordinator. Shards is the only required field.
type Config struct {
	// Shards lists the bufferdbd shard addresses, in shard-index order:
	// Shards[i] must hold slice i-of-len(Shards) under Map.
	Shards []string

	// Map is the sharding layout; nil selects shard.DefaultTPCH().
	Map shard.Map

	// Catalog holds the table schemas (no rows needed) the coordinator
	// plans against; nil selects tpch.SchemaCatalog().
	Catalog *storage.Catalog

	// Client configures the per-shard connection pools (busy retries,
	// backoff, dial timeout).
	Client client.Config

	// MemoryLimit caps the coordinator-side tracked allocations of all
	// concurrently merging queries (exchange queues, final aggregates and
	// sorts). 0 disables the cap but keeps tracking, so TrackedBytes still
	// audits to zero when idle.
	MemoryLimit int64

	// HedgeDelay, when > 0, arms hedged scans: if a shard has not started
	// streaming within HedgeDelay, the coordinator issues a second attempt
	// and takes whichever responds first. 0 disables hedging.
	HedgeDelay time.Duration

	// Replication is the replication factor the fleet was loaded with:
	// slice s lives on nodes (s+r) mod N for r in [0,Replication), so every
	// node hosts Replication slices and every slice survives Replication-1
	// node losses. 0 or 1 selects the classic one-slice-per-node layout
	// (no failover); values above len(Shards) clamp down.
	Replication int

	// BreakerThreshold is the consecutive-transport-failure count that
	// opens a node's circuit breaker. 0 selects 3; values below 1 clamp
	// to 1.
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker rejects a node before
	// admitting a half-open probe. 0 selects 5s.
	BreakerCooldown time.Duration
}

// Coordinator plans and executes distributed queries over a fixed set of
// shards. Safe for concurrent use.
type Coordinator struct {
	cfg      Config
	shards   []*client.Client
	cat      *storage.Catalog
	smap     shard.Map
	mem      *exec.MemTracker
	rf       int        // effective replication factor
	breakers []*breaker // one per node, indexed like shards
	rr       atomic.Uint64 // round-robin cursor for single-shard routing
	queries  atomic.Int64
}

// Open connects to every shard. The dial is lazy per the client's pool —
// Open validates the configuration, not reachability; the first query
// surfaces unreachable shards as ShardErrors.
func Open(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("dist: Config.Shards is required")
	}
	if cfg.Map == nil {
		cfg.Map = shard.DefaultTPCH()
	}
	if cfg.Catalog == nil {
		cfg.Catalog = tpch.SchemaCatalog()
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = 3
	}
	c := &Coordinator{
		cfg:  cfg,
		cat:  cfg.Catalog,
		smap: cfg.Map,
		mem:  exec.NewMemTracker("coordinator", cfg.MemoryLimit, nil),
		rf:   shard.ClampRF(cfg.Replication, len(cfg.Shards)),
	}
	for i, addr := range cfg.Shards {
		cl, err := client.Dial(addr, cfg.Client)
		if err != nil {
			c.Close()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		c.shards = append(c.shards, cl)
		c.breakers = append(c.breakers, newBreaker(threshold, cfg.BreakerCooldown))
	}
	return c, nil
}

// Close releases every shard pool.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.shards {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TrackedBytes reports the coordinator-side bytes currently charged by
// merging queries. Idle coordinators report 0 — anything else is a leak.
func (c *Coordinator) TrackedBytes() int64 { return c.mem.Bytes() }

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Query plans and starts a distributed query. Options forward to the
// shards unchanged — engine selection, per-shard deadline, memory budget,
// force-join, buffer size — while the coordinator's merge always runs on
// the local Volcano pipeline.
func (c *Coordinator) Query(ctx context.Context, sqlText string, opts ...client.Option) (*Rows, error) {
	c.queries.Add(1)
	p, err := c.plan(sqlText)
	if err != nil {
		metricPlanRejected().Inc()
		return nil, err
	}
	if p.single {
		// Replicated-only query: route the original text to one healthy
		// node (every node holds the replicated tables in full), failing
		// over on transport loss at stream start. Mid-stream loss of a
		// passthrough stream stays an error — the coordinator does not
		// buffer the rows already surfaced to the caller.
		metricSingleShard().Inc()
		n := len(c.shards)
		start := int(c.rr.Add(1)-1) % n
		var lastErr error
		lastIdx := start
		for k := 0; k < n; k++ {
			idx := (start + k) % n
			ok, probe := c.breakers[idx].allow()
			if !ok {
				continue
			}
			rows, err := c.shards[idx].Query(ctx, sqlText, opts...)
			if err == nil {
				c.breakerSuccess(idx, probe)
				return &Rows{passthrough: rows, shard: idx, co: c}, nil
			}
			if !client.IsTransport(err) || ctx.Err() != nil {
				c.breakerSuccess(idx, probe)
				return nil, c.shardErr(idx, err)
			}
			c.breakerFailure(idx, probe)
			metricFailovers(c.cfg.Shards[idx]).Inc()
			lastErr, lastIdx = err, idx
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("dist: every node's circuit breaker is open")
		}
		return nil, c.shardErr(lastIdx, lastErr)
	}
	metricScatter().Inc()
	return c.scatter(ctx, p, opts)
}

// route picks the replica to serve one leg of slice s, honoring the
// breakers: a half-open node with a free probe slot is preferred (recovery
// needs traffic to happen at all), then the first closed replica in
// placement order. tried holds nodes this leg already failed on. ok=false
// means every viable replica is open or already tried — the slice is
// unavailable.
func (c *Coordinator) route(slice int, tried map[int]bool) (node int, probe, ok bool) {
	closedNode := -1
	for _, n := range shard.Replicas(slice, len(c.shards), c.rf) {
		if tried[n] {
			continue
		}
		allowed, isProbe := c.breakers[n].allow()
		if !allowed {
			continue
		}
		if isProbe {
			return n, true, true
		}
		if closedNode < 0 {
			closedNode = n
		}
	}
	if closedNode < 0 {
		return -1, false, false
	}
	return closedNode, false, true
}

// breakerSuccess records a request that proved node alive and refreshes
// the exported state gauge. A successful probe counts as a recovery.
func (c *Coordinator) breakerSuccess(node int, probe bool) {
	if probe {
		metricProbes(c.cfg.Shards[node], "recovered").Inc()
	}
	c.breakers[node].success(probe)
	metricBreakerState(c.cfg.Shards[node]).Set(float64(c.breakers[node].snapshot()))
}

// breakerFailure records a transport failure against node, counting the
// trip when this failure opened the circuit.
func (c *Coordinator) breakerFailure(node int, probe bool) {
	addr := c.cfg.Shards[node]
	if probe {
		metricProbes(addr, "failed").Inc()
	}
	if c.breakers[node].failure(probe) {
		metricBreakerTrips(addr).Inc()
	}
	metricBreakerState(addr).Set(float64(c.breakers[node].snapshot()))
}

// Health summarizes fleet availability from the breakers' point of view.
type Health struct {
	// Status is "pass" (every replica of every slice closed), "warn"
	// (every slice has a closed replica but some redundancy is lost), or
	// "fail" (some slice has no closed replica — queries over it fail).
	Status string
	// Detail names the degraded or down slices and their breaker states.
	Detail string
}

// Health reports fleet health for the /readyz sidecar. Breakers change
// state only under traffic, so a dead node degrades health after the first
// failed queries, not at the instant it dies.
func (c *Coordinator) Health() Health {
	n := len(c.shards)
	var degraded, down []string
	for s := 0; s < n; s++ {
		closed := 0
		reps := shard.Replicas(s, n, c.rf)
		for _, node := range reps {
			if c.breakers[node].snapshot() == breakerClosed {
				closed++
			}
		}
		switch {
		case closed == 0:
			down = append(down, fmt.Sprintf("slice %d (replicas %v all open)", s, reps))
		case closed < len(reps):
			degraded = append(degraded, fmt.Sprintf("slice %d (%d/%d replicas closed)", s, closed, len(reps)))
		}
	}
	switch {
	case len(down) > 0:
		return Health{Status: "fail", Detail: strings.Join(append(down, degraded...), "; ")}
	case len(degraded) > 0:
		return Health{Status: "warn", Detail: strings.Join(degraded, "; ")}
	default:
		return Health{Status: "pass"}
	}
}

// shardErr wraps a per-shard failure in its typed form. Transport-class
// failures (the shard is gone, the dial failed, the stream broke) wrap
// bufferdb.ErrShardUnavailable; a ServerError keeps its own sentinel chain
// (busy, deadline, budget) so engine errors pass through untranslated.
func (c *Coordinator) shardErr(idx int, err error) error {
	if err == nil {
		return nil
	}
	var se *ShardError
	if errors.As(err, &se) {
		return err
	}
	metricShardErrors(c.cfg.Shards[idx]).Inc()
	return &ShardError{Shard: idx, Addr: c.cfg.Shards[idx], Err: err}
}

// nodeErr attributes a failure to one (slice, node) pair: ShardError.Shard
// names the hash slice (what the query lost), Addr names the node that
// failed (where it was lost). With replication they differ.
func (c *Coordinator) nodeErr(slice, node int, err error) error {
	if err == nil {
		return nil
	}
	var se *ShardError
	if errors.As(err, &se) {
		return err
	}
	addr := c.cfg.Shards[node]
	metricShardErrors(addr).Inc()
	return &ShardError{Shard: slice, Addr: addr, Err: err}
}

// rescatterError asks the coordinator cursor to restart the whole scatter:
// a non-replayable leg (shard-side aggregation streams groups in
// nondeterministic order) lost its node after emitting rows, so leg-local
// replay cannot line up with what the merge already consumed. The restart
// is transparent exactly when nothing surfaced past the merge barrier —
// which the blocking merge above such legs guarantees.
type rescatterError struct {
	cause error // the *ShardError that triggered the restart
}

func (e *rescatterError) Error() string {
	return fmt.Sprintf("dist: scatter must restart: %v", e.cause)
}

func (e *rescatterError) Unwrap() error { return e.cause }

// ShardError attributes a distributed-query failure to one shard.
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

// Error renders the shard attribution and the underlying failure.
func (e *ShardError) Error() string {
	return fmt.Sprintf("dist: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the underlying error — and, for transport-class failures,
// bufferdb.ErrShardUnavailable — so errors.Is classifies shard loss while
// engine sentinels (busy, deadline, memory budget) pass through.
func (e *ShardError) Unwrap() []error {
	var srv *client.ServerError
	if errors.As(e.Err, &srv) {
		switch srv.Code {
		case wire.CodeQuery, wire.CodeBusy, wire.CodeDeadline, wire.CodeOOM,
			wire.CodePanic, wire.CodeCanceled, wire.CodeUnknownStmt:
			// The shard is alive and reported a query-level failure: keep
			// its own unwrap chain, don't claim unavailability.
			return []error{e.Err}
		}
	}
	if errors.Is(e.Err, context.Canceled) && !errors.Is(e.Err, context.DeadlineExceeded) {
		return []error{e.Err}
	}
	return []error{e.Err, bufferdb.ErrShardUnavailable}
}
