// Package dist is bufferdb's scatter-gather tier: a coordinator that plans
// distributed queries over hash-sharded bufferdbd nodes and merges their
// partial streams locally. It is the paper's buffering discipline applied
// one level up — shards produce long runs of partial results, the
// coordinator gathers partition-ordered streams through the same Exchange
// operator the single-node engine uses for parallel scans, and the final
// aggregate/sort/limit runs locally on the merged stream.
//
// Planning is source-to-source: the coordinator parses the query with the
// engine's own parser, decides distributability against the shard map,
// rewrites aggregates into shard-local partials (COUNT→SUM, AVG→SUM+COUNT),
// renders the rewritten AST back to SQL, and ships it to every shard over
// the wire protocol with the caller's engine selection, deadline, and
// memory budget forwarded intact. Queries touching only replicated tables
// skip the scatter entirely and route, round-robin, to a single shard.
//
// Failure semantics: a shard that cannot be reached or dies mid-stream
// surfaces as a *ShardError wrapping bufferdb.ErrShardUnavailable; closing
// the coordinator cursor cancels the sibling shard streams (each remote
// scan's Cancel frame frees the shard's admission slot and tracked memory).
// Engine sentinels a shard reports — busy, deadline, memory budget — pass
// through the ShardError's unwrap chain, so errors.Is works at the
// coordinator exactly as it does against one node.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/exec"
	"bufferdb/internal/shard"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
	"bufferdb/internal/wire"
)

// Config configures a Coordinator. Shards is the only required field.
type Config struct {
	// Shards lists the bufferdbd shard addresses, in shard-index order:
	// Shards[i] must hold slice i-of-len(Shards) under Map.
	Shards []string

	// Map is the sharding layout; nil selects shard.DefaultTPCH().
	Map shard.Map

	// Catalog holds the table schemas (no rows needed) the coordinator
	// plans against; nil selects tpch.SchemaCatalog().
	Catalog *storage.Catalog

	// Client configures the per-shard connection pools (busy retries,
	// backoff, dial timeout).
	Client client.Config

	// MemoryLimit caps the coordinator-side tracked allocations of all
	// concurrently merging queries (exchange queues, final aggregates and
	// sorts). 0 disables the cap but keeps tracking, so TrackedBytes still
	// audits to zero when idle.
	MemoryLimit int64

	// HedgeDelay, when > 0, arms hedged scans: if a shard has not started
	// streaming within HedgeDelay, the coordinator issues a second attempt
	// and takes whichever responds first. 0 disables hedging.
	HedgeDelay time.Duration
}

// Coordinator plans and executes distributed queries over a fixed set of
// shards. Safe for concurrent use.
type Coordinator struct {
	cfg     Config
	shards  []*client.Client
	cat     *storage.Catalog
	smap    shard.Map
	mem     *exec.MemTracker
	rr      atomic.Uint64 // round-robin cursor for single-shard routing
	queries atomic.Int64
}

// Open connects to every shard. The dial is lazy per the client's pool —
// Open validates the configuration, not reachability; the first query
// surfaces unreachable shards as ShardErrors.
func Open(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("dist: Config.Shards is required")
	}
	if cfg.Map == nil {
		cfg.Map = shard.DefaultTPCH()
	}
	if cfg.Catalog == nil {
		cfg.Catalog = tpch.SchemaCatalog()
	}
	c := &Coordinator{
		cfg:  cfg,
		cat:  cfg.Catalog,
		smap: cfg.Map,
		mem:  exec.NewMemTracker("coordinator", cfg.MemoryLimit, nil),
	}
	for i, addr := range cfg.Shards {
		cl, err := client.Dial(addr, cfg.Client)
		if err != nil {
			c.Close()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		c.shards = append(c.shards, cl)
	}
	return c, nil
}

// Close releases every shard pool.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.shards {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TrackedBytes reports the coordinator-side bytes currently charged by
// merging queries. Idle coordinators report 0 — anything else is a leak.
func (c *Coordinator) TrackedBytes() int64 { return c.mem.Bytes() }

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Query plans and starts a distributed query. Options forward to the
// shards unchanged — engine selection, per-shard deadline, memory budget,
// force-join, buffer size — while the coordinator's merge always runs on
// the local Volcano pipeline.
func (c *Coordinator) Query(ctx context.Context, sqlText string, opts ...client.Option) (*Rows, error) {
	c.queries.Add(1)
	p, err := c.plan(sqlText)
	if err != nil {
		metricPlanRejected().Inc()
		return nil, err
	}
	if p.single {
		// Replicated-only query: route the original text to one shard.
		idx := int(c.rr.Add(1)-1) % len(c.shards)
		metricSingleShard().Inc()
		rows, err := c.shards[idx].Query(ctx, sqlText, opts...)
		if err != nil {
			return nil, c.shardErr(idx, err)
		}
		return &Rows{passthrough: rows, shard: idx, co: c}, nil
	}
	metricScatter().Inc()
	return c.scatter(ctx, p, opts)
}

// shardErr wraps a per-shard failure in its typed form. Transport-class
// failures (the shard is gone, the dial failed, the stream broke) wrap
// bufferdb.ErrShardUnavailable; a ServerError keeps its own sentinel chain
// (busy, deadline, budget) so engine errors pass through untranslated.
func (c *Coordinator) shardErr(idx int, err error) error {
	if err == nil {
		return nil
	}
	var se *ShardError
	if errors.As(err, &se) {
		return err
	}
	metricShardErrors(c.cfg.Shards[idx]).Inc()
	return &ShardError{Shard: idx, Addr: c.cfg.Shards[idx], Err: err}
}

// ShardError attributes a distributed-query failure to one shard.
type ShardError struct {
	Shard int
	Addr  string
	Err   error
}

// Error renders the shard attribution and the underlying failure.
func (e *ShardError) Error() string {
	return fmt.Sprintf("dist: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the underlying error — and, for transport-class failures,
// bufferdb.ErrShardUnavailable — so errors.Is classifies shard loss while
// engine sentinels (busy, deadline, memory budget) pass through.
func (e *ShardError) Unwrap() []error {
	var srv *client.ServerError
	if errors.As(e.Err, &srv) {
		switch srv.Code {
		case wire.CodeQuery, wire.CodeBusy, wire.CodeDeadline, wire.CodeOOM,
			wire.CodePanic, wire.CodeCanceled, wire.CodeUnknownStmt:
			// The shard is alive and reported a query-level failure: keep
			// its own unwrap chain, don't claim unavailability.
			return []error{e.Err}
		}
	}
	if errors.Is(e.Err, context.Canceled) && !errors.Is(e.Err, context.DeadlineExceeded) {
		return []error{e.Err}
	}
	return []error{e.Err, bufferdb.ErrShardUnavailable}
}
