package dist

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/exec"
	"bufferdb/internal/wire"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("dist: server closed")

// serveBatchRows and serveBatchBytes bound coordinator result batches the
// same way the single-node server bounds its own.
const (
	serveBatchRows  = 256
	serveBatchBytes = 64 << 10
	handshakeWait   = 10 * time.Second
)

// ServerConfig configures the coordinator's wire front-end.
type ServerConfig struct {
	// Coordinator executes the queries. Required.
	Coordinator *Coordinator

	// Info is the banner string sent in HelloOK.
	Info string

	// WriteTimeout arms a per-frame write deadline; 0 selects 30s,
	// negative disables.
	WriteTimeout time.Duration

	// Logf, when non-nil, receives session diagnostics.
	Logf func(format string, args ...any)
}

// Server fronts a Coordinator with the same wire protocol bufferdbd shards
// speak, so the standard client — and therefore the CLI — talks to a
// sharded deployment exactly as it talks to one node.
type Server struct {
	cfg    ServerConfig
	co     *Coordinator
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer builds the wire front-end for a coordinator.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Coordinator == nil {
		return nil, errors.New("dist: ServerConfig.Coordinator is required")
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	} else if cfg.WriteTimeout < 0 {
		cfg.WriteTimeout = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:       cfg,
		co:        cfg.Coordinator,
		ctx:       ctx,
		cancel:    cancel,
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections until the listener fails or Shutdown runs.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.wg.Done()
			}()
			newDSession(s, conn).run()
		}()
	}
}

// Addr reports one serving address, for tests that listen on ":0".
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	for l := range s.listeners {
		return l.Addr()
	}
	return nil
}

// Shutdown stops accepting, waits for in-flight sessions up to ctx, then
// force-closes stragglers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// errorCode maps a coordinator failure to its stable wire code. Shard loss
// reports CodeUnavailable; an error a live shard itself reported keeps the
// shard's code, so busy/deadline/budget classification survives the hop.
func (s *Server) errorCode(err error) wire.Code {
	var srv *client.ServerError
	switch {
	case errors.Is(err, bufferdb.ErrShardUnavailable):
		return wire.CodeUnavailable
	case errors.As(err, &srv):
		return srv.Code
	case errors.Is(err, exec.ErrMemoryBudgetExceeded):
		return wire.CodeOOM
	case errors.Is(err, context.DeadlineExceeded):
		return wire.CodeDeadline
	case errors.Is(err, context.Canceled):
		if s.ctx.Err() != nil {
			return wire.CodeShutdown
		}
		return wire.CodeCanceled
	default:
		return wire.CodeQuery
	}
}

// dframe is one decoded incoming frame.
type dframe struct {
	t       wire.Type
	payload []byte
}

// dsession serves one coordinator connection. Same shape as the single-node
// session: all writes on the session goroutine, a reader goroutine feeding
// a frame channel so Cancel and disconnects surface mid-stream.
type dsession struct {
	srv    *Server
	conn   net.Conn
	bw     *bufio.Writer
	frames chan dframe

	stmts  map[uint64]distPrepared
	nextID uint64
}

// distPrepared is a coordinator-side prepared statement: the text and its
// options, re-planned per Execute (the scatter plan itself is cheap; the
// expensive state lives on the shards' own statement caches).
type distPrepared struct {
	sql  string
	opts wire.QueryOpts
}

func newDSession(s *Server, conn net.Conn) *dsession {
	return &dsession{
		srv:    s,
		conn:   conn,
		bw:     bufio.NewWriterSize(conn, 32<<10),
		frames: make(chan dframe, 1),
		stmts:  map[uint64]distPrepared{},
	}
}

func (ss *dsession) readLoop() {
	defer close(ss.frames)
	for {
		t, p, err := wire.ReadFrame(ss.conn)
		if err != nil {
			return
		}
		ss.frames <- dframe{t, p}
	}
}

func (ss *dsession) run() {
	defer func() {
		ss.conn.Close()
		for range ss.frames {
		}
	}()
	go ss.readLoop()

	if err := ss.handshake(); err != nil {
		ss.srv.logf("dist: %s: handshake: %v", ss.conn.RemoteAddr(), err)
		return
	}
	for {
		select {
		case <-ss.srv.ctx.Done():
			_ = ss.sendError(wire.CodeShutdown, "coordinator shutting down")
			return
		case f, ok := <-ss.frames:
			if !ok {
				return
			}
			if err := ss.dispatch(f); err != nil {
				ss.srv.logf("dist: %s: %v", ss.conn.RemoteAddr(), err)
				return
			}
		}
	}
}

func (ss *dsession) handshake() error {
	_ = ss.conn.SetReadDeadline(time.Now().Add(handshakeWait))
	var f dframe
	var ok bool
	select {
	case f, ok = <-ss.frames:
		if !ok {
			return fmt.Errorf("connection closed before Hello")
		}
	case <-ss.srv.ctx.Done():
		return context.Cause(ss.srv.ctx)
	}
	_ = ss.conn.SetReadDeadline(time.Time{})
	if f.t != wire.THello {
		_ = ss.sendError(wire.CodeProtocol, fmt.Sprintf("expected Hello, got %s", f.t))
		return fmt.Errorf("first frame was %s", f.t)
	}
	r := wire.NewReader(f.payload)
	magic, version := r.U32(), r.U8()
	if err := r.Err(); err != nil {
		_ = ss.sendError(wire.CodeProtocol, "malformed Hello")
		return err
	}
	if magic != wire.Magic {
		_ = ss.sendError(wire.CodeProtocol, "bad magic")
		return fmt.Errorf("bad magic 0x%08x", magic)
	}
	if version != wire.Version {
		_ = ss.sendError(wire.CodeProtocol, fmt.Sprintf("unsupported protocol version %d", version))
		return fmt.Errorf("unsupported version %d", version)
	}
	var b wire.Builder
	b.U8(wire.Version)
	b.String(ss.srv.cfg.Info)
	return ss.send(wire.THelloOK, b.Bytes())
}

func (ss *dsession) dispatch(f dframe) error {
	switch f.t {
	case wire.TQuery:
		r := wire.NewReader(f.payload)
		opts := r.Opts()
		sql := r.String()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed Query")
			return err
		}
		return ss.runQuery(sql, opts)

	case wire.TPrepare:
		r := wire.NewReader(f.payload)
		opts := r.Opts()
		sql := r.String()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed Prepare")
			return err
		}
		// Plan now so unparsable or non-distributable statements fail at
		// Prepare, matching the single-node server's contract.
		if _, err := ss.srv.co.plan(sql); err != nil {
			return ss.sendQueryError(err)
		}
		ss.nextID++
		id := ss.nextID
		ss.stmts[id] = distPrepared{sql: sql, opts: opts}
		var b wire.Builder
		b.U64(id)
		return ss.send(wire.TPrepared, b.Bytes())

	case wire.TExecute:
		r := wire.NewReader(f.payload)
		id := r.U64()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed Execute")
			return err
		}
		ps, ok := ss.stmts[id]
		if !ok {
			return ss.sendError(wire.CodeUnknownStmt, fmt.Sprintf("unknown statement id %d", id))
		}
		return ss.runQuery(ps.sql, ps.opts)

	case wire.TCloseStmt:
		r := wire.NewReader(f.payload)
		id := r.U64()
		if err := r.Err(); err != nil {
			_ = ss.sendError(wire.CodeProtocol, "malformed CloseStmt")
			return err
		}
		delete(ss.stmts, id)
		return nil

	case wire.TTables:
		return ss.tables()

	case wire.TCancel:
		// A cancel that raced the end of its stream; nothing to abort.
		return nil

	default:
		_ = ss.sendError(wire.CodeProtocol, fmt.Sprintf("unexpected %s frame", f.t))
		return fmt.Errorf("unexpected %s frame", f.t)
	}
}

// runQuery plans and streams one distributed statement.
func (ss *dsession) runQuery(sql string, opts wire.QueryOpts) error {
	qctx, qcancel := context.WithCancel(ss.srv.ctx)
	defer qcancel()
	rows, err := ss.srv.co.Query(qctx, sql, client.WithQueryOpts(opts))
	if err != nil {
		return ss.sendQueryError(err)
	}
	return ss.stream(qcancel, rows)
}

// stream drives a coordinator cursor onto the wire: Columns, RowBatch*,
// then Done or a terminal Error frame. A Cancel frame or disconnect cancels
// the query context, which tears down every shard stream.
func (ss *dsession) stream(qcancel context.CancelFunc, rows *Rows) error {
	defer rows.Close()

	stop := make(chan struct{})
	watch := make(chan dwatchEvent, 1)
	go func() {
		select {
		case f, ok := <-ss.frames:
			if !ok {
				watch <- dwatchDisconnect
			} else if f.t == wire.TCancel {
				watch <- dwatchCancel
			} else {
				watch <- dwatchProtocol
			}
			qcancel()
		case <-stop:
			watch <- dwatchNone
		}
	}()
	settle := func() dwatchEvent {
		close(stop)
		return <-watch
	}

	cols := rows.Columns()
	var b wire.Builder
	b.U32(uint32(len(cols)))
	for _, c := range cols {
		b.String(c)
	}
	if err := ss.send(wire.TColumns, b.Bytes()); err != nil {
		settle()
		return err
	}

	var total uint64
	var batch wire.Builder
	var inBatch uint32
	flush := func() error {
		if inBatch == 0 {
			return nil
		}
		payload := batch.Bytes()
		binary.BigEndian.PutUint32(payload[:4], inBatch)
		err := ss.send(wire.TRowBatch, payload)
		batch.Reset()
		inBatch = 0
		return err
	}
	batch.U32(0) // row-count placeholder, patched in flush

	for rows.Next() {
		for _, v := range rows.Row() {
			if err := batch.Value(v); err != nil {
				settle()
				return ss.sendQueryError(err)
			}
		}
		inBatch++
		total++
		if int(inBatch) >= serveBatchRows || batch.Len() >= serveBatchBytes {
			if err := flush(); err != nil {
				settle()
				return err
			}
			batch.U32(0)
		}
	}

	ev := settle()
	switch ev {
	case dwatchDisconnect:
		return fmt.Errorf("client disconnected mid-stream")
	case dwatchProtocol:
		_ = ss.sendError(wire.CodeProtocol, "frame other than Cancel during result stream")
		return fmt.Errorf("frame other than Cancel during result stream")
	}

	if err := rows.Err(); err != nil {
		return ss.sendQueryError(err)
	}
	if ev == dwatchCancel {
		return ss.sendError(wire.CodeCanceled, "query canceled")
	}
	if err := flush(); err != nil {
		return err
	}
	if err := rows.Close(); err != nil {
		return ss.sendQueryError(err)
	}
	var done wire.Builder
	done.U64(total)
	return ss.send(wire.TDone, done.Bytes())
}

type dwatchEvent int

const (
	dwatchNone dwatchEvent = iota
	dwatchCancel
	dwatchDisconnect
	dwatchProtocol
)

// tables answers a Tables frame with the deployment-wide view: sharded
// tables sum their row counts exactly once per slice, replicated tables
// report one copy's count. On a replicated fleet each slice is read from
// any reachable replica, so the catalog stays available through a node
// loss just like queries do.
func (ss *dsession) tables() error {
	ctx, cancel := context.WithTimeout(ss.srv.ctx, 30*time.Second)
	defer cancel()

	co := ss.srv.co
	total := map[string]uint64{}
	var order []string
	record := func(slice int, infos []client.TableInfo) {
		for _, ti := range infos {
			if _, seen := total[ti.Name]; !seen {
				order = append(order, ti.Name)
			}
			if co.smap.Sharded(ti.Name) {
				total[ti.Name] += ti.Rows
			} else if slice == 0 {
				total[ti.Name] = ti.Rows
			}
		}
	}
	for slice := range co.shards {
		infos, err := ss.sliceTables(ctx, slice)
		if err != nil {
			return ss.sendQueryError(err)
		}
		record(slice, infos)
	}
	var b wire.Builder
	b.U32(uint32(len(order)))
	for _, n := range order {
		b.String(n)
		b.U64(total[n])
	}
	return ss.send(wire.TTablesOK, b.Bytes())
}

// sliceTables reads one slice's catalog from any healthy replica. An
// unreplicated fleet keeps the legacy path (default-DB Tables on the
// slice's own node, so pre-slice servers still answer); a replicated one
// addresses the slice explicitly and fails over across replicas, feeding
// the same breakers queries do.
func (ss *dsession) sliceTables(ctx context.Context, slice int) ([]client.TableInfo, error) {
	co := ss.srv.co
	if co.rf <= 1 {
		infos, err := co.shards[slice].Tables(ctx)
		if err != nil {
			return nil, co.shardErr(slice, err)
		}
		return infos, nil
	}
	tried := map[int]bool{}
	var lastErr error
	lastNode := slice
	for {
		node, probe, ok := co.route(slice, tried)
		if !ok {
			if lastErr == nil {
				lastErr = fmt.Errorf("dist: every replica of slice %d has an open circuit breaker", slice)
			}
			return nil, co.nodeErr(slice, lastNode, lastErr)
		}
		infos, err := co.shards[node].TablesOf(ctx, slice)
		if err == nil {
			co.breakerSuccess(node, probe)
			return infos, nil
		}
		if !client.IsTransport(err) || ctx.Err() != nil {
			co.breakerSuccess(node, probe)
			return nil, co.nodeErr(slice, node, err)
		}
		co.breakerFailure(node, probe)
		metricFailovers(co.cfg.Shards[node]).Inc()
		tried[node] = true
		lastErr, lastNode = err, node
	}
}

func (ss *dsession) send(t wire.Type, payload []byte) error {
	if d := ss.srv.cfg.WriteTimeout; d > 0 {
		_ = ss.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := wire.WriteFrame(ss.bw, t, payload); err != nil {
		return err
	}
	return ss.bw.Flush()
}

func (ss *dsession) sendQueryError(err error) error {
	return ss.sendError(ss.srv.errorCode(err), err.Error())
}

func (ss *dsession) sendError(code wire.Code, msg string) error {
	var b wire.Builder
	b.U16(uint16(code))
	b.String(msg)
	return ss.send(wire.TError, b.Bytes())
}
