package dist

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		if tripped := b.failure(false); tripped {
			t.Fatalf("failure %d tripped the breaker before the threshold", i+1)
		}
		if ok, _ := b.allow(); !ok {
			t.Fatalf("breaker rejected traffic below the threshold")
		}
	}
	if tripped := b.failure(false); !tripped {
		t.Fatal("threshold failure did not report the trip")
	}
	if b.snapshot() != breakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.snapshot())
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted traffic within the cooldown")
	}
	// Failures while already open do not re-count as trips.
	if tripped := b.failure(false); tripped {
		t.Fatal("failure on an open breaker reported a second trip")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(3, time.Hour)
	b.failure(false)
	b.failure(false)
	b.success(false)
	b.failure(false)
	b.failure(false)
	if b.snapshot() != breakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", b.snapshot())
	}
	if tripped := b.failure(false); !tripped {
		t.Fatal("third consecutive failure did not trip")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, 20*time.Millisecond)
	b.failure(false)
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted traffic before the cooldown")
	}
	time.Sleep(25 * time.Millisecond)

	ok, probe := b.allow()
	if !ok || !probe {
		t.Fatalf("allow after cooldown = (%v, %v), want the probe slot", ok, probe)
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.snapshot())
	}
	// Only one probe may be in flight.
	if ok, _ := b.allow(); ok {
		t.Fatal("second caller admitted while the probe is in flight")
	}

	b.success(true)
	if b.snapshot() != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.snapshot())
	}
	if ok, probe := b.allow(); !ok || probe {
		t.Fatalf("allow after recovery = (%v, %v), want plain admission", ok, probe)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := newBreaker(1, 20*time.Millisecond)
	b.failure(false)
	time.Sleep(25 * time.Millisecond)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatalf("allow after cooldown = (%v, %v), want probe", ok, probe)
	}
	if tripped := b.failure(true); !tripped {
		t.Fatal("failed probe did not report the re-trip")
	}
	if b.snapshot() != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.snapshot())
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker admitted traffic right after a failed probe")
	}
	// The cooldown clock restarted at the failed probe.
	time.Sleep(25 * time.Millisecond)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatalf("allow after second cooldown = (%v, %v), want probe", ok, probe)
	}
}

func TestBreakerClamps(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != 1 {
		t.Fatalf("threshold clamp = %d, want 1", b.threshold)
	}
	if b.cooldown != 5*time.Second {
		t.Fatalf("cooldown default = %v, want 5s", b.cooldown)
	}
	if tripped := b.failure(false); !tripped {
		t.Fatal("threshold-1 breaker survived its first failure")
	}
}
