package dist

import (
	"context"
	"fmt"
	"time"

	"bufferdb/internal/client"
	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// scatter builds and opens the gather pipeline for a distributed plan: one
// remote scan per shard under the plan's merge (exchange, final aggregate,
// sort, limit), charged to a per-query tracker under the coordinator's.
func (c *Coordinator) scatter(ctx context.Context, p *distPlan, opts []client.Option) (*Rows, error) {
	qctx, cancel := context.WithCancel(ctx)
	mem := exec.NewMemTracker("dist-query", 0, c.mem)
	parts := make([]exec.Operator, len(c.shards))
	for i := range c.shards {
		parts[i] = newRemoteScan(c, i, p.shardSQL, opts, p.shardSchema)
	}
	root, err := p.merge(parts)
	if err != nil {
		cancel()
		return nil, err
	}
	ectx := &exec.Context{Catalog: c.cat, Ctx: qctx, Mem: mem}
	if err := exec.CallOpen(ectx, root); err != nil {
		// Cancel before Close: exchange workers parked on shard reads
		// unblock via the client's cancel watcher, so Close's drain can't
		// deadlock on a wedged shard.
		cancel()
		_ = exec.CallClose(ectx, root)
		mem.ReleaseAll()
		return nil, err
	}
	sch := root.Schema()
	cols := make([]string, len(sch))
	for i, col := range sch {
		cols[i] = col.Name
	}
	return &Rows{co: c, shard: -1, ectx: ectx, root: root, cancel: cancel, mem: mem, cols: cols}, nil
}

// Rows is the coordinator's streaming cursor. It mirrors the client cursor's
// contract — Columns/Next/Row/Scan/Err/Close — so callers swap a single
// node for a sharded deployment without touching their drain loop.
//
// A replicated-only query runs in passthrough mode: the cursor wraps one
// shard's client stream directly. A scattered query runs the local gather
// pipeline; Close cancels the query context first, which tears down every
// sibling shard stream before the operators drain.
type Rows struct {
	co *Coordinator

	// Passthrough mode: the whole query ran on one shard.
	passthrough *client.Rows
	shard       int

	// Scatter mode: merged stream over the local exec pipeline.
	ectx   *exec.Context
	root   exec.Operator
	cancel context.CancelFunc
	mem    *exec.MemTracker
	cols   []string
	cur    []any
	err    error
	done   bool
	closed bool
}

// Columns names the result attributes. The slice is shared; treat it as
// read-only.
func (r *Rows) Columns() []string {
	if r.passthrough != nil {
		return r.passthrough.Columns()
	}
	return r.cols
}

// Next advances the cursor. It returns false at end of stream, on error, or
// after Close; consult Err to tell completion from failure.
func (r *Rows) Next() bool {
	if r.passthrough != nil {
		return r.passthrough.Next()
	}
	if r.closed || r.done || r.err != nil {
		return false
	}
	row, err := exec.CallNext(r.ectx, r.root)
	if err != nil {
		r.err = err
		r.shutdown()
		return false
	}
	if row == nil {
		r.done = true
		r.shutdown()
		return false
	}
	if r.cur == nil {
		r.cur = make([]any, len(row))
	}
	for i, v := range row {
		r.cur[i] = nativeValue(v)
	}
	return true
}

// Row returns the current row's native Go values (int64, float64, string,
// bool, time.Time, nil). The slice is reused by Next; copy it to retain.
func (r *Rows) Row() []any {
	if r.passthrough != nil {
		return r.passthrough.Row()
	}
	if r.closed || r.done || r.err != nil {
		return nil
	}
	return r.cur
}

// Scan copies the current row into dest, one pointer per column, with the
// same conversions and error contract as the client cursor.
func (r *Rows) Scan(dest ...any) error {
	if r.passthrough != nil {
		return r.passthrough.Scan(dest...)
	}
	if r.closed || r.done || r.err != nil || r.cur == nil {
		if r.closed {
			return fmt.Errorf("client: Scan: rows are closed")
		}
		return fmt.Errorf("client: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := client.ScanValue(d, r.cur[i], i, r.cols[i]); err != nil {
			return err
		}
	}
	return nil
}

// Err reports the error that terminated iteration, if any. Shard failures
// surface as *ShardError; errors.Is(err, bufferdb.ErrShardUnavailable)
// classifies transport-class loss.
func (r *Rows) Err() error {
	if r.passthrough != nil {
		return r.co.shardErr(r.shard, r.passthrough.Err())
	}
	return r.err
}

// Close releases the cursor: it cancels the query context (tearing down
// every shard stream), drains the operator tree, and returns all tracked
// coordinator memory. Idempotent; does not disturb Err.
func (r *Rows) Close() error {
	if r.passthrough != nil {
		if r.closed {
			return nil
		}
		r.closed = true
		return r.co.shardErr(r.shard, r.passthrough.Close())
	}
	r.shutdown()
	return nil
}

// shutdown tears the scatter pipeline down exactly once. Cancellation MUST
// precede operator Close: exchange workers blocked on shard TCP reads only
// unblock when the client cancel watcher fires, and Close joins them.
func (r *Rows) shutdown() {
	if r.closed {
		return
	}
	r.closed = true
	r.cur = nil
	start := time.Now()
	r.cancel()
	if err := exec.CallClose(r.ectx, r.root); err != nil && r.err == nil && !r.done {
		r.err = err
	}
	r.mem.ReleaseAll()
	metricMergeClose().Observe(time.Since(start).Seconds())
}

// nativeValue converts an engine value to the client cursor's native Go
// representation, so both cursor modes hand back identical dynamic types.
func nativeValue(v storage.Value) any {
	switch v.Kind {
	case storage.TypeNull:
		return nil
	case storage.TypeBool:
		return v.Bool()
	case storage.TypeInt64:
		return v.I
	case storage.TypeFloat64:
		return v.F
	case storage.TypeString:
		return v.S
	case storage.TypeDate:
		return time.Unix(v.I*86400, 0).UTC()
	default:
		return nil
	}
}
