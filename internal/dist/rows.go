package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bufferdb/internal/client"
	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// maxScatterRestarts bounds how many times one query may rebuild its whole
// scatter after a non-replayable leg loss. Each restart re-routes through
// the breakers, so a dead node is excluded quickly; the bound exists for
// fleets that keep dying mid-query.
const maxScatterRestarts = 3

// scatter builds and opens the gather pipeline for a distributed plan: one
// remote scan per slice under the plan's merge (exchange, final aggregate,
// sort, limit), charged to a per-query tracker under the coordinator's.
// The cursor keeps the plan so it can rebuild the pipeline if a
// non-replayable leg is lost mid-stream before anything surfaced.
func (c *Coordinator) scatter(ctx context.Context, p *distPlan, opts []client.Option) (*Rows, error) {
	r := &Rows{co: c, shard: -1, plan: p, opts: opts, baseCtx: ctx}
	if err := r.start(); err != nil {
		return nil, err
	}
	return r, nil
}

// start builds and opens one incarnation of the scatter pipeline.
func (r *Rows) start() error {
	qctx, cancel := context.WithCancel(r.baseCtx)
	mem := exec.NewMemTracker("dist-query", 0, r.co.mem)
	parts := make([]exec.Operator, len(r.co.shards))
	for i := range parts {
		parts[i] = newRemoteScan(r.co, i, r.plan.shardSQL, r.opts, r.plan.shardSchema, r.plan.replayable)
	}
	root, err := r.plan.merge(parts)
	if err != nil {
		cancel()
		return err
	}
	ectx := &exec.Context{Catalog: r.co.cat, Ctx: qctx, Mem: mem}
	if err := exec.CallOpen(ectx, root); err != nil {
		// Cancel before Close: exchange workers parked on shard reads
		// unblock via the client's cancel watcher, so Close's drain can't
		// deadlock on a wedged shard.
		cancel()
		_ = exec.CallClose(ectx, root)
		mem.ReleaseAll()
		return err
	}
	sch := root.Schema()
	cols := make([]string, len(sch))
	for i, col := range sch {
		cols[i] = col.Name
	}
	r.ectx, r.root, r.cancel, r.mem, r.cols = ectx, root, cancel, mem, cols
	return nil
}

// Rows is the coordinator's streaming cursor. It mirrors the client cursor's
// contract — Columns/Next/Row/Scan/Err/Close — so callers swap a single
// node for a sharded deployment without touching their drain loop.
//
// A replicated-only query runs in passthrough mode: the cursor wraps one
// shard's client stream directly. A scattered query runs the local gather
// pipeline; Close cancels the query context first, which tears down every
// sibling shard stream before the operators drain.
type Rows struct {
	co *Coordinator

	// Passthrough mode: the whole query ran on one shard.
	passthrough *client.Rows
	shard       int

	// Scatter mode: merged stream over the local exec pipeline, plus the
	// compiled plan so the pipeline can be rebuilt for a scatter restart.
	plan     *distPlan
	opts     []client.Option
	baseCtx  context.Context
	ectx     *exec.Context
	root     exec.Operator
	cancel   context.CancelFunc
	mem      *exec.MemTracker
	cols     []string
	cur      []any
	surfaced int64 // rows handed to the caller (restart barrier)
	restarts int
	err      error
	done     bool
	closed   bool
}

// Columns names the result attributes. The slice is shared; treat it as
// read-only.
func (r *Rows) Columns() []string {
	if r.passthrough != nil {
		return r.passthrough.Columns()
	}
	return r.cols
}

// Next advances the cursor. It returns false at end of stream, on error, or
// after Close; consult Err to tell completion from failure.
func (r *Rows) Next() bool {
	if r.passthrough != nil {
		return r.passthrough.Next()
	}
	if r.closed || r.done || r.err != nil {
		return false
	}
	for {
		row, err := exec.CallNext(r.ectx, r.root)
		if err != nil {
			var re *rescatterError
			if errors.As(err, &re) {
				if r.surfaced == 0 && r.restarts < maxScatterRestarts && r.baseCtx.Err() == nil {
					// Nothing surfaced past the merge barrier: rebuild the
					// whole scatter transparently. The failed node's breaker
					// took the failure, so the new incarnation routes around
					// it.
					r.restarts++
					metricRescatters().Inc()
					r.teardown()
					if rerr := r.start(); rerr != nil {
						r.err = rerr
						r.closed = true
						return false
					}
					continue
				}
				err = re.cause
			}
			r.err = err
			r.shutdown()
			return false
		}
		if row == nil {
			r.done = true
			r.shutdown()
			return false
		}
		if r.cur == nil {
			r.cur = make([]any, len(row))
		}
		for i, v := range row {
			r.cur[i] = nativeValue(v)
		}
		r.surfaced++
		return true
	}
}

// Row returns the current row's native Go values (int64, float64, string,
// bool, time.Time, nil). The slice is reused by Next; copy it to retain.
func (r *Rows) Row() []any {
	if r.passthrough != nil {
		return r.passthrough.Row()
	}
	if r.closed || r.done || r.err != nil {
		return nil
	}
	return r.cur
}

// Scan copies the current row into dest, one pointer per column, with the
// same conversions and error contract as the client cursor.
func (r *Rows) Scan(dest ...any) error {
	if r.passthrough != nil {
		return r.passthrough.Scan(dest...)
	}
	if r.closed || r.done || r.err != nil || r.cur == nil {
		if r.closed {
			return fmt.Errorf("client: Scan: rows are closed")
		}
		return fmt.Errorf("client: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := client.ScanValue(d, r.cur[i], i, r.cols[i]); err != nil {
			return err
		}
	}
	return nil
}

// Err reports the error that terminated iteration, if any. Shard failures
// surface as *ShardError; errors.Is(err, bufferdb.ErrShardUnavailable)
// classifies transport-class loss.
func (r *Rows) Err() error {
	if r.passthrough != nil {
		return r.co.shardErr(r.shard, r.passthrough.Err())
	}
	return r.err
}

// Close releases the cursor: it cancels the query context (tearing down
// every shard stream), drains the operator tree, and returns all tracked
// coordinator memory. Idempotent; does not disturb Err.
func (r *Rows) Close() error {
	if r.passthrough != nil {
		if r.closed {
			return nil
		}
		r.closed = true
		return r.co.shardErr(r.shard, r.passthrough.Close())
	}
	r.shutdown()
	return nil
}

// teardown dismantles the current pipeline incarnation without closing the
// cursor, so a scatter restart can build the next one. Cancellation MUST
// precede operator Close: exchange workers blocked on shard TCP reads only
// unblock when the client cancel watcher fires, and Close joins them.
func (r *Rows) teardown() {
	r.cancel()
	_ = exec.CallClose(r.ectx, r.root)
	r.mem.ReleaseAll()
}

// shutdown tears the scatter pipeline down exactly once.
func (r *Rows) shutdown() {
	if r.closed {
		return
	}
	r.closed = true
	r.cur = nil
	start := time.Now()
	r.cancel()
	if err := exec.CallClose(r.ectx, r.root); err != nil && r.err == nil && !r.done {
		r.err = err
	}
	r.mem.ReleaseAll()
	metricMergeClose().Observe(time.Since(start).Seconds())
}

// nativeValue converts an engine value to the client cursor's native Go
// representation, so both cursor modes hand back identical dynamic types.
func nativeValue(v storage.Value) any {
	switch v.Kind {
	case storage.TypeNull:
		return nil
	case storage.TypeBool:
		return v.Bool()
	case storage.TypeInt64:
		return v.I
	case storage.TypeFloat64:
		return v.F
	case storage.TypeString:
		return v.S
	case storage.TypeDate:
		return time.Unix(v.I*86400, 0).UTC()
	default:
		return nil
	}
}
