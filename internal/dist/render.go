package dist

import (
	"fmt"
	"strconv"
	"strings"

	"bufferdb/internal/sql"
)

// render turns a (possibly rewritten) AST back into SQL text for shipping
// to shards. The output targets exactly the grammar internal/sql parses —
// every binary expression is parenthesized so the original precedence
// survives the round trip, strings escape embedded quotes by doubling, and
// intervals re-render in their day-normalized form.
func render(stmt *sql.SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, item := range stmt.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if item.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(renderExpr(item.Expr))
		if item.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(item.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, ref := range stmt.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(renderTableRef(ref))
	}
	for _, j := range stmt.Joins {
		b.WriteString(" JOIN ")
		b.WriteString(renderTableRef(j.Table))
		b.WriteString(" ON ")
		b.WriteString(renderExpr(j.On))
	}
	if stmt.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(renderExpr(stmt.Where))
	}
	if len(stmt.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range stmt.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderExpr(g))
		}
	}
	if len(stmt.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range stmt.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if stmt.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(stmt.Limit))
	}
	return b.String()
}

func renderTableRef(ref sql.TableRef) string {
	if ref.Alias != "" {
		return ref.Name + " " + ref.Alias
	}
	return ref.Name
}

// quoteString renders a SQL string literal, doubling embedded quotes.
func quoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func renderExpr(n sql.Node) string {
	switch e := n.(type) {
	case *sql.Ident:
		if e.Table != "" {
			return e.Table + "." + e.Name
		}
		return e.Name
	case *sql.NumberLit:
		return e.Text
	case *sql.StringLit:
		return quoteString(e.Val)
	case *sql.DateLit:
		return "DATE " + quoteString(e.Val)
	case *sql.IntervalLit:
		return fmt.Sprintf("INTERVAL '%d' DAY", e.Days)
	case *sql.NullLit:
		return "NULL"
	case *sql.BoolLit:
		if e.Val {
			return "TRUE"
		}
		return "FALSE"
	case *sql.BinaryExpr:
		return "(" + renderExpr(e.L) + " " + e.Op + " " + renderExpr(e.R) + ")"
	case *sql.UnaryExpr:
		if e.Op == "-" {
			return "(-" + renderExpr(e.E) + ")"
		}
		return "(NOT " + renderExpr(e.E) + ")"
	case *sql.BetweenExpr:
		op := " BETWEEN "
		if e.Negate {
			op = " NOT BETWEEN "
		}
		return "(" + renderExpr(e.E) + op + renderExpr(e.Lo) + " AND " + renderExpr(e.Hi) + ")"
	case *sql.LikeExpr:
		op := " LIKE "
		if e.Negate {
			op = " NOT LIKE "
		}
		return "(" + renderExpr(e.E) + op + quoteString(e.Pattern) + ")"
	case *sql.IsNullExpr:
		op := " IS NULL"
		if e.Negate {
			op = " IS NOT NULL"
		}
		return "(" + renderExpr(e.E) + op + ")"
	case *sql.FuncCall:
		if e.Star {
			return "COUNT(*)"
		}
		return e.Name + "(" + renderExpr(e.Arg) + ")"
	case *sql.CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range e.Whens {
			b.WriteString(" WHEN " + renderExpr(w.Cond) + " THEN " + renderExpr(w.Then))
		}
		if e.Else != nil {
			b.WriteString(" ELSE " + renderExpr(e.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *sql.InExpr:
		parts := make([]string, len(e.List))
		for i, item := range e.List {
			parts[i] = renderExpr(item)
		}
		op := " IN ("
		if e.Negate {
			op = " NOT IN ("
		}
		return "(" + renderExpr(e.E) + op + strings.Join(parts, ", ") + "))"
	default:
		return "?"
	}
}
