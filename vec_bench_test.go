// Wall-clock head-to-head of the three execution strategies: tuple-at-a-time
// Volcano, the paper's buffer operator, and the internal/vec block-oriented
// engine. These run uninstrumented — real Go time, not simulated cycles — so
// they measure the interpretation overhead each strategy actually pays on
// the host, complementing the ext3 experiment's simulated cache counters.
package bufferdb

import (
	"testing"

	"bufferdb/internal/bench"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// benchVecCase measures one query under all three strategies as
// sub-benchmarks, so `go test -bench VecVsBuffered` prints a comparable
// ns/op triple per query.
func benchVecCase(b *testing.B, query string, opt sql.Options) {
	r := benchRunner(b)
	p, err := r.Plan(query, opt)
	if err != nil {
		b.Fatal(err)
	}
	refined, err := r.Refine(p)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, n *plan.Node, engine plan.Engine) {
		b.ReportAllocs()
		rows := 0
		for i := 0; i < b.N; i++ {
			_, n, err := r.MeasureWallEngine(n, engine)
			if err != nil {
				b.Fatal(err)
			}
			rows = n
		}
		b.ReportMetric(float64(rows), "rows")
	}
	b.Run("original", func(b *testing.B) { run(b, p, plan.EngineVolcano) })
	b.Run("buffered", func(b *testing.B) { run(b, refined, plan.EngineVolcano) })
	b.Run("vectorized", func(b *testing.B) { run(b, p, plan.EngineVec) })
}

func BenchmarkVecVsBufferedQuery1(b *testing.B) {
	benchVecCase(b, bench.Query1, sql.Options{})
}

func BenchmarkVecVsBufferedQuery3Hash(b *testing.B) {
	benchVecCase(b, bench.Query3, sql.Options{ForceJoin: sql.JoinHash})
}
