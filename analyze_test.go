package bufferdb

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCompare checks got against testdata/<name>.golden, rewriting the
// file under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update to refresh):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

const analyzeQuery = `
	SELECT l_returnflag, COUNT(*) AS orders, SUM(l_extendedprice) AS revenue
	FROM lineitem
	WHERE l_quantity > 10
	GROUP BY l_returnflag
	ORDER BY l_returnflag`

// TestGoldenExplain pins the Explain rendering (conventional and refined)
// for a refined TPC-H aggregation and for a parallel plan.
func TestGoldenExplain(t *testing.T) {
	orig, refined, err := testDB.Explain(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "explain_agg", "-- conventional:\n"+orig+"-- refined:\n"+refined)

	_, par, err := testDB.Explain(analyzeQuery, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "explain_agg_parallel", par)
}

// TestGoldenExplainAnalyze pins the deterministic columns of the
// EXPLAIN ANALYZE table (operator, engine, group, calls, rows, drains,
// avgfill, fan-out) across both engines and a parallel plan.
func TestGoldenExplainAnalyze(t *testing.T) {
	cases := []struct {
		name string
		opts []QueryOption
	}{
		{"analyze_volcano", nil},
		{"analyze_vec", []QueryOption{WithEngine(EngineVec)}},
		{"analyze_volcano_parallel", []QueryOption{WithParallelism(4)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := testDB.ExplainAnalyze(context.Background(), analyzeQuery, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, tc.name, a.Table())
		})
	}
}

// TestAnalyzeAttributionSums is the acceptance check: on a refined TPC-H
// aggregation the per-operator self attributions (cycles, instruction-cache
// misses) must sum, within slack, to the run's whole-query totals — on both
// engines.
func TestAnalyzeAttributionSums(t *testing.T) {
	for _, eng := range []Engine{EngineVolcano, EngineVec} {
		t.Run(string(eng), func(t *testing.T) {
			a, err := testDB.ExplainAnalyze(context.Background(), analyzeQuery, WithEngine(eng))
			if err != nil {
				t.Fatal(err)
			}
			var selfCycles float64
			var selfL1I uint64
			var sawBuffer, sawDrains bool
			a.Root.Walk(func(s *OpStat) {
				selfCycles += s.SelfCycles
				selfL1I += s.SelfL1I
				if s.Calls == 0 && s.Opens == 0 {
					t.Errorf("operator %s never invoked", s.Name)
				}
				if s.Buffer {
					sawBuffer = true
					if s.Drains > 0 {
						sawDrains = true
					}
				}
			})
			// The block engine batches natively, so explicit buffer
			// operators with drain counts only appear on the Volcano side.
			if eng == EngineVolcano && (!sawBuffer || !sawDrains) {
				t.Fatalf("refined plan shows no draining buffer (buffer=%v drains=%v):\n%s", sawBuffer, sawDrains, a.String())
			}
			if a.Totals.Cycles <= 0 {
				t.Fatalf("no simulated cycles recorded")
			}
			if rel := math.Abs(selfCycles-a.Totals.Cycles) / a.Totals.Cycles; rel > 0.05 {
				t.Errorf("self cycles sum %.0f vs totals %.0f (off by %.1f%%)", selfCycles, a.Totals.Cycles, rel*100)
			}
			diff := math.Abs(float64(selfL1I) - float64(a.Totals.L1IMisses))
			if diff > 8 && diff > 0.1*float64(a.Totals.L1IMisses) {
				t.Errorf("self L1I sum %d vs totals %d", selfL1I, a.Totals.L1IMisses)
			}
			// Rows at the root of the stat tree match the statement's result.
			res, err := testDB.Query(context.Background(), analyzeQuery, WithEngine(eng))
			if err != nil {
				t.Fatal(err)
			}
			if a.Root.Rows != uint64(len(res.Rows)) {
				t.Errorf("root stat rows %d, query returned %d", a.Root.Rows, len(res.Rows))
			}
		})
	}
}

// TestStatsZeroOverheadConsistent is the conformance check: collecting
// per-operator stats must not change results, and — because the collector
// only reads simulator state — must leave the simulated hardware counters
// exactly where an uninstrumented run puts them.
func TestStatsZeroOverheadConsistent(t *testing.T) {
	ctx := context.Background()
	for _, eng := range []Engine{EngineVolcano, EngineVec} {
		t.Run(string(eng), func(t *testing.T) {
			plain, err := testDB.Query(ctx, analyzeQuery, WithEngine(eng))
			if err != nil {
				t.Fatal(err)
			}
			counted, err := testDB.Query(ctx, analyzeQuery, WithEngine(eng), WithStats())
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(plain.Rows) != fmt.Sprint(counted.Rows) {
				t.Errorf("stats collection changed the result:\n%v\nvs\n%v", plain.Rows, counted.Rows)
			}
		})
	}

	// Counter identity: an instrumented simulated run (ExplainAnalyze) and
	// an uninstrumented one (Profile's refined side) execute the same plan
	// on identical fresh machines.
	prof, err := testDB.Profile(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	a, err := testDB.ExplainAnalyze(ctx, analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if a.Totals.Cycles != prof.Buffered.Cycles || a.Totals.Uops != prof.Buffered.Uops ||
		a.Totals.L1IMisses != prof.Buffered.L1IMisses {
		t.Errorf("instrumented run perturbed the simulation:\nanalyze: cycles=%.0f uops=%d l1i=%d\nprofile: cycles=%.0f uops=%d l1i=%d",
			a.Totals.Cycles, a.Totals.Uops, a.Totals.L1IMisses,
			prof.Buffered.Cycles, prof.Buffered.Uops, prof.Buffered.L1IMisses)
	}
}

// TestRowsStats exercises the WithStats streaming path: live counter
// collection without the simulated CPU.
func TestRowsStats(t *testing.T) {
	rows, err := testDB.QueryStream(context.Background(), analyzeQuery, WithStats())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	st := rows.Stats()
	if st == nil {
		t.Fatal("Stats() = nil after WithStats run")
	}
	if st.Rows != uint64(n) {
		t.Errorf("root stat rows %d, cursor emitted %d", st.Rows, n)
	}
	if st.Cycles != 0 {
		t.Errorf("live run should carry no simulated cycles, got %g", st.Cycles)
	}
	// Without WithStats the cursor reports no stats.
	plain, err := testDB.QueryStream(context.Background(), analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Stats() != nil {
		t.Error("Stats() non-nil without WithStats")
	}
}

// TestQueryFunctionalOptions covers the unified Query surface and the
// deprecated wrappers' equivalence.
func TestQueryFunctionalOptions(t *testing.T) {
	ctx := context.Background()
	q := `SELECT COUNT(*) FROM lineitem WHERE l_quantity > 30`

	base, err := testDB.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := testDB.Query(ctx, q, WithEngine(EngineVec))
	if err != nil {
		t.Fatal(err)
	}
	par, err := testDB.Query(ctx, q, WithParallelism(4), WithBufferSize(256))
	if err != nil {
		t.Fatal(err)
	}
	noref, err := testDB.Query(ctx, q, WithoutRefinement())
	if err != nil {
		t.Fatal(err)
	}
	psh, err := testDB.Query(ctx, q, WithEngine(EnginePush))
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(base.Rows)
	for name, res := range map[string]*Result{"vec": vec, "parallel": par, "norefine": noref, "push": psh} {
		if fmt.Sprint(res.Rows) != want {
			t.Errorf("%s result %v differs from base %v", name, res.Rows, base.Rows)
		}
	}

	if _, err := testDB.Query(ctx, q, WithEngine(Engine("gpu"))); err == nil {
		t.Error("unknown engine option not rejected")
	}
}

// TestColumnsCachedAndScanErrors covers the Rows fixes: Columns must not
// allocate per call, and Scan errors must name the 0-based column index.
func TestColumnsCachedAndScanErrors(t *testing.T) {
	rows, err := testDB.QueryStream(context.Background(),
		`SELECT l_orderkey, l_comment FROM lineitem LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	c1, c2 := rows.Columns(), rows.Columns()
	if &c1[0] != &c2[0] {
		t.Error("Columns() allocates a new slice per call; want the cached one")
	}
	allocs := testing.AllocsPerRun(100, func() { _ = rows.Columns() })
	if allocs != 0 {
		t.Errorf("Columns() allocates %.0f per call, want 0", allocs)
	}

	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var k int64
	var wrong int64 // l_comment is a string; scanning into int64 must fail
	err = rows.Scan(&k, &wrong)
	if err == nil {
		t.Fatal("Scan type mismatch not reported")
	}
	if !strings.Contains(err.Error(), "column 1") {
		t.Errorf("Scan error does not name the 0-based column index: %v", err)
	}
}
