package bufferdb

import (
	"context"
	"fmt"
	"strings"

	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
)

// OpStat is one operator's node in an EXPLAIN ANALYZE tree: its plan-side
// identity joined with the runtime counters collected while executing.
type OpStat struct {
	// Name is the operator's display name.
	Name string
	// Engine is "volcano", "vec", "push", or "adapter" for engine-bridge
	// operators.
	Engine string
	// Group is the refinement pass's 1-based execution-group id (0 = the
	// operator was not placed in a group — e.g. blocking operators).
	Group int
	// Buffer marks buffer-like operators (buffer, adapter refill loops)
	// whose Drains/AvgFill describe batching behavior.
	Buffer bool
	// BufferSize is a buffer's configured tuple capacity.
	BufferSize int
	// EstRows is the optimizer's output-cardinality estimate.
	EstRows float64

	// Opens/Calls/Rows/Batches count operator invocations and output.
	Opens   uint64
	Calls   uint64
	Rows    uint64
	Batches uint64

	// Drains counts refill runs; FillTuples the tuples they stored; AvgFill
	// their mean length — the quantity that decides whether the buffer
	// amortized its instruction reloads.
	Drains     uint64
	FillTuples uint64
	AvgFill    float64
	// Amortized reports whether the buffer's refills ran long enough to pay
	// for themselves (mean fill at least half the capacity, or the whole
	// input in one drain).
	Amortized bool

	// Partitions is an exchange operator's fan-out (0 elsewhere).
	Partitions int

	// Cycles/Uops/L1IMisses are inclusive simulated-CPU attribution
	// (operator plus subtree); the Self* fields subtract the children.
	// All zero when the execution ran without the simulated CPU.
	Cycles     float64
	Uops       uint64
	L1IMisses  uint64
	SelfCycles float64
	SelfUops   uint64
	SelfL1I    uint64

	Children []*OpStat
}

// Walk visits the stat tree depth-first, pre-order.
func (s *OpStat) Walk(visit func(*OpStat)) {
	visit(s)
	for _, c := range s.Children {
		c.Walk(visit)
	}
}

// publicStat mirrors a plan.OpReport tree as the public OpStat type.
func publicStat(r *plan.OpReport) *OpStat {
	s := &OpStat{
		Name:       r.Name,
		Engine:     r.Engine,
		Group:      r.Group,
		Buffer:     r.Buffer,
		BufferSize: r.BufferSize,
		EstRows:    r.EstRows,
		Opens:      r.Stats.Opens,
		Calls:      r.Stats.Calls,
		Rows:       r.Stats.Rows,
		Batches:    r.Stats.Batches,
		Drains:     r.Stats.Drains,
		FillTuples: r.Stats.FillTuples,
		AvgFill:    r.Stats.AvgFill(),
		Amortized:  r.BufferAmortized(),
		Partitions: r.Stats.Partitions,
		Cycles:     r.Stats.Cycles,
		Uops:       r.Stats.Uops,
		L1IMisses:  r.Stats.L1IMisses,
		SelfCycles: r.SelfCycles,
		SelfUops:   r.SelfUops,
		SelfL1I:    r.SelfL1I,
	}
	for _, c := range r.Children {
		s.Children = append(s.Children, publicStat(c))
	}
	return s
}

// Analysis is the result of ExplainAnalyze: the refined plan annotated with
// per-operator runtime stats from one instrumented execution, plus the
// run's whole-query simulated counters.
type Analysis struct {
	// Query is the analyzed statement.
	Query string
	// Engine is the engine the statement executed on.
	Engine Engine
	// Plan is the refined plan rendering (as Explain would show it).
	Plan string
	// Root is the per-operator stat tree.
	Root *OpStat
	// Totals are the execution's whole-query simulated counters; the
	// per-operator Self* attributions sum to them (within slack).
	Totals RunStats

	report *plan.OpReport
}

// String renders the analysis as an EXPLAIN ANALYZE table with simulated
// cycle and instruction-cache-miss attribution per operator.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE (engine=%s)\n", a.Engine)
	b.WriteString(plan.FormatReport(a.report, true))
	fmt.Fprintf(&b, "totals: cycles=%.0f uops=%d L1I-misses=%d CPI=%.2f simulated=%.2fms\n",
		a.Totals.Cycles, a.Totals.Uops, a.Totals.L1IMisses, a.Totals.CPI, a.Totals.ElapsedSec*1e3)
	return b.String()
}

// Table renders only the deterministic per-operator columns (calls, rows,
// drains, fan-out) without simulated attribution — stable across runs and
// platforms, which is what the golden-file tests pin down.
func (a *Analysis) Table() string {
	return plan.FormatReport(a.report, false)
}

// ExplainAnalyze plans the statement (with refinement and parallelization
// per the options), executes it on a fresh simulated CPU with per-operator
// stats collection, and returns the annotated plan tree. The simulated
// machine is single-core, so parallel plans run their partitions serially
// inline — deterministic, and directly comparable with sequential plans.
func (db *DB) ExplainAnalyze(ctx context.Context, query string, opts ...QueryOption) (*Analysis, error) {
	qo := applyOptions(opts)
	label, engine, err := db.planEngine(qo)
	if err != nil {
		return nil, err
	}
	p, err := db.plan(query, qo)
	if err != nil {
		return nil, err
	}
	cp, err := plan.CompileAnalyzed(p, db.cm, engine)
	if err != nil {
		return nil, err
	}
	cpu, err := cpusim.New(cpusim.DefaultConfig(), db.cm.TextSegmentBytes())
	if err != nil {
		return nil, err
	}
	ectx := &exec.Context{
		Catalog:    db.cat,
		CPU:        cpu,
		Placements: exec.PlaceCatalog(cpu, db.cat),
		Stats:      exec.NewStatsCollector(),
		Ctx:        ctx,
	}
	if _, err := exec.Run(ectx, cp.Root); err != nil {
		return nil, err
	}
	report := plan.BuildReport(cp, ectx.Stats)
	ctr := cpu.Counters()
	return &Analysis{
		Query:  query,
		Engine: label,
		Plan:   plan.Explain(p),
		Root:   publicStat(report),
		Totals: RunStats{
			ElapsedSec:  cpu.ElapsedSeconds(),
			CPI:         cpu.CPI(),
			Cycles:      cpu.TotalCycles(),
			Uops:        ctr.Uops,
			L1IMisses:   ctr.L1IMisses,
			L1DMisses:   ctr.L1DMisses,
			L2Misses:    ctr.L2Misses + ctr.L2MissesPrefetched,
			ITLBMisses:  ctr.ITLBMisses,
			Branches:    ctr.Branches,
			Mispredicts: ctr.Mispredicts,
		},
		report: report,
	}, nil
}
