package bufferdb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkConcurrentThroughput measures queries/sec served by one DB at
// 1, 4 and 16 client goroutines — the inter-query scaling metric for the
// concurrency-first redesign. Each op is one full Query (plan, refine,
// execute, materialize) of a mixed statement.
func BenchmarkConcurrentThroughput(b *testing.B) {
	db, err := OpenTPCH(0.002, Options{CardinalityThreshold: 16})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the lazy per-table stats outside the timed region.
	if _, err := db.Query(context.Background(), concurrentQueries[0]); err != nil {
		b.Fatal(err)
	}
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var next atomic.Int64
			var wg sync.WaitGroup
			per := b.N / clients
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						q := concurrentQueries[int(next.Add(1))%len(concurrentQueries)]
						if _, err := db.Query(context.Background(), q); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			ops := float64(clients * per)
			b.ReportMetric(ops/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}
