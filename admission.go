package bufferdb

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds how many queries a database executes at once.
// MaxConcurrent <= 0 disables admission control entirely; queries are then
// never queued or rejected.
type AdmissionConfig struct {
	// MaxConcurrent is the number of queries allowed to execute
	// simultaneously.
	MaxConcurrent int
	// MaxQueued is the number of queries allowed to wait for a slot once
	// all MaxConcurrent are taken. A query arriving with the queue full is
	// rejected immediately with ErrServerBusy.
	MaxQueued int
	// WaitTimeout caps how long a queued query waits for a slot before
	// being shed with ErrServerBusy. Zero waits until the caller's context
	// expires. WithAdmissionWait overrides it per query.
	WaitTimeout time.Duration
}

// admission is the semaphore + bounded wait queue behind AdmissionConfig.
// A nil *admission is inert: acquire and release are no-ops.
type admission struct {
	slots     chan struct{}
	queued    atomic.Int64
	maxQueued int64
	wait      time.Duration
}

// newAdmission builds the controller, or nil when the config disables it.
func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	return &admission{
		slots:     make(chan struct{}, cfg.MaxConcurrent),
		maxQueued: int64(cfg.MaxQueued),
		wait:      cfg.WaitTimeout,
	}
}

// acquire claims an execution slot, queueing when all are taken. It returns
// a wrapped ErrServerBusy when the wait queue is full or the wait times
// out, and the context's error when ctx expires first.
func (a *admission) acquire(ctx context.Context, waitOverride time.Duration) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if n := a.queued.Add(1); n > a.maxQueued {
		a.queued.Add(-1)
		return fmt.Errorf("bufferdb: %w: %d queries executing, %d queued",
			ErrServerBusy, cap(a.slots), n-1)
	}
	defer a.queued.Add(-1)
	wait := a.wait
	if waitOverride > 0 {
		wait = waitOverride
	}
	var expired <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		expired = t.C
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-expired:
		return fmt.Errorf("bufferdb: %w: no slot freed within %v", ErrServerBusy, wait)
	case <-ctx.Done():
		if err := ctx.Err(); err == context.DeadlineExceeded {
			return fmt.Errorf("bufferdb: %w while queued for admission: %w", ErrDeadlineExceeded, err)
		}
		return fmt.Errorf("bufferdb: canceled while queued for admission: %w", ctx.Err())
	}
}

// release frees a slot claimed by acquire.
func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.slots
}
