module bufferdb

go 1.22
