package bufferdb

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The reuse suite pins the semantic reuse cache's contract: bit-identical
// results with the cache on or off across all three engines, cross-query
// (and cross-engine) recycling of hash-join builds and aggregate tables,
// write invalidation, and a zero memory footprint after Close.

// reuseQueries mixes the operator shapes the cache handles: plain and
// grouped aggregation, join+aggregate, and predicate spellings that
// normalize to the same fingerprint.
var reuseQueries = []string{
	`SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`,
	`SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'`,
	`SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity < 30`,
	`SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders WHERE l_quantity < 30 AND o_orderkey = l_orderkey`,
	`SELECT l_linestatus, AVG(l_discount) FROM lineitem WHERE l_quantity < 40 AND l_tax < 0.06 GROUP BY l_linestatus ORDER BY l_linestatus`,
	`SELECT l_linestatus, AVG(l_discount) FROM lineitem WHERE l_tax < 0.06 AND l_quantity < 40 GROUP BY l_linestatus ORDER BY l_linestatus`,
}

func newReuseDB(t testing.TB, opts Options) *DB {
	t.Helper()
	if opts.MemoryLimit == 0 {
		opts.MemoryLimit = 256 << 20
	}
	if opts.CardinalityThreshold == 0 {
		opts.CardinalityThreshold = 100
	}
	db, err := OpenTPCH(0.002, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestReuseEquivalenceAcrossEngines runs the workload twice per engine on a
// cache-enabled database (cold, then warm through the cache) and once on a
// cache-free twin, asserting bit-identical results everywhere.
func TestReuseEquivalenceAcrossEngines(t *testing.T) {
	cached := newReuseDB(t, Options{ReuseCache: true})
	plain := newReuseDB(t, Options{})

	for _, e := range []Engine{EngineVolcano, EngineVec, EnginePush} {
		for _, q := range reuseQueries {
			want, err := plain.Query(context.Background(), q, WithEngine(e))
			if err != nil {
				t.Fatalf("%s cache-off %q: %v", e, q, err)
			}
			cold, err := cached.Query(context.Background(), q, WithEngine(e))
			if err != nil {
				t.Fatalf("%s cold %q: %v", e, q, err)
			}
			warm, err := cached.Query(context.Background(), q, WithEngine(e))
			if err != nil {
				t.Fatalf("%s warm %q: %v", e, q, err)
			}
			if resultKey(cold) != resultKey(want) {
				t.Fatalf("%s cold result differs from cache-off for %q:\n got %s\nwant %s",
					e, q, resultKey(cold), resultKey(want))
			}
			if resultKey(warm) != resultKey(want) {
				t.Fatalf("%s warm (cached) result differs for %q:\n got %s\nwant %s",
					e, q, resultKey(warm), resultKey(want))
			}
		}
	}
	st := cached.ReuseStats()
	if st.Hits == 0 {
		t.Fatalf("workload never hit the cache: %+v", st)
	}
	if plainSt := plain.ReuseStats(); plainSt.MaxBytes != 0 {
		t.Fatalf("cache-off database reports a live cache: %+v", plainSt)
	}
}

// TestReuseCrossEngineAdoption: a build published by one engine serves the
// other two — the hash-table and aggregate layouts are engine-independent.
func TestReuseCrossEngineAdoption(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true})
	const q = `SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`

	var want string
	for i, e := range []Engine{EngineVolcano, EngineVec, EnginePush} {
		res, err := db.Query(context.Background(), q, WithEngine(e))
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if i == 0 {
			want = resultKey(res)
		} else if resultKey(res) != want {
			t.Fatalf("%s result differs from the published entry:\n got %s\nwant %s", e, resultKey(res), want)
		}
	}
	st := db.ReuseStats()
	if st.Hits < 2 {
		t.Fatalf("cross-engine runs recorded %d hits, want >= 2 (vec and push adopting volcano's table)", st.Hits)
	}
}

// TestReuseAliasRenamedPrepared pins the warm-speedup contract on a
// shared-subplan prepared workload: two alias-renamed spellings of one
// aggregation share a cache entry, and the warm run beats the cold build by
// at least 5x.
func TestReuseAliasRenamedPrepared(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true})

	stA, err := db.Prepare(`SELECT l_returnflag AS flag, SUM(l_extendedprice * (1 - l_discount)) AS revenue, COUNT(*) AS n
	 FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := db.Prepare(`SELECT l_returnflag AS rf, SUM(l_extendedprice * (1 - l_discount)) AS rev, COUNT(*) AS how_many
	 FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}

	coldStart := time.Now()
	cold, err := stA.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(coldStart)

	// Aliases differ; the fingerprint must not care.
	var warmDur time.Duration = time.Hour
	var warm *Result
	for i := 0; i < 5; i++ {
		s := time.Now()
		w, err := stB.Query(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(s); d < warmDur {
			warmDur = d
		}
		warm = w
	}

	// Compare rows only: the header line legally differs (the two
	// spellings alias their output columns differently).
	ck, wk := resultKey(cold), resultKey(warm)
	if ck[strings.IndexByte(ck, '\n')+1:] != wk[strings.IndexByte(wk, '\n')+1:] {
		t.Fatalf("alias-renamed prepared results differ:\n%s\n-- vs --\n%s", ck, wk)
	}
	st := db.ReuseStats()
	if st.Hits == 0 {
		t.Fatalf("alias-renamed statement never hit the shared entry: %+v", st)
	}
	if warmDur*5 > coldDur {
		t.Errorf("warm run %v not 5x faster than cold build %v", warmDur, coldDur)
	}
}

// TestReuseInsertInvalidation is the stale-read regression test: an INSERT
// into a referenced table forces dependents to rebuild, while entries over
// untouched tables survive.
func TestReuseInsertInvalidation(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true, DataDir: t.TempDir()})
	const regionAgg = `SELECT COUNT(*), MIN(r_regionkey) FROM region`
	const nationAgg = `SELECT COUNT(*) FROM nation`

	count := func(q string) int64 {
		t.Helper()
		res, err := db.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].(int64)
	}

	before := count(regionAgg) // publish region entry
	count(nationAgg)           // publish nation entry
	count(regionAgg)           // warm hit
	st0 := db.ReuseStats()
	if st0.Hits == 0 || st0.Entries < 2 {
		t.Fatalf("cache not warmed as expected: %+v", st0)
	}

	if _, err := db.Query(context.Background(),
		`INSERT INTO region VALUES (8, 'PACIFICA', 'speculative')`); err != nil {
		t.Fatal(err)
	}
	st1 := db.ReuseStats()
	if st1.Invalidations == 0 {
		t.Fatalf("INSERT invalidated nothing: %+v", st1)
	}

	// Dependent rebuilt with the new row; a stale cached COUNT would miss it.
	if after := count(regionAgg); after != before+1 {
		t.Fatalf("region count after INSERT = %d, want %d (served a stale cached aggregate)", after, before+1)
	}
	// The nation entry survived the region write.
	h := db.ReuseStats().Hits
	count(nationAgg)
	if db.ReuseStats().Hits != h+1 {
		t.Fatal("nation entry did not survive a write to region")
	}
	// The epoch moved, so the old fingerprint can never resurface.
	if got := db.TableEpoch("region"); got != 1 {
		t.Fatalf("region epoch = %d, want 1", got)
	}
	if got := db.TableEpoch("nation"); got != 0 {
		t.Fatalf("nation epoch = %d, want 0", got)
	}
}

// TestReuseOptOut: WithoutReuse bypasses the cache entirely for one query.
func TestReuseOptOut(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true})
	const q = `SELECT COUNT(*), SUM(l_quantity) FROM lineitem WHERE l_quantity < 30`

	want, err := db.Query(context.Background(), q, WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	if st := db.ReuseStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("opted-out query touched the cache: %+v", st)
	}
	if _, err := db.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(context.Background(), q, WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	if db.ReuseStats().Hits != 0 {
		t.Fatal("opted-out query hit the cache")
	}
	if resultKey(got) != resultKey(want) {
		t.Fatal("opt-out changed the result")
	}
}

// TestReuseCloseReleasesMemory: published entries charge TrackedBytes while
// resident and release everything at Close.
func TestReuseCloseReleasesMemory(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true})
	if _, err := db.Query(context.Background(), reuseQueries[0]); err != nil {
		t.Fatal(err)
	}
	st := db.ReuseStats()
	if st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("nothing published: %+v", st)
	}
	if got := db.TrackedBytes(); got != st.Bytes {
		t.Fatalf("idle tracked bytes %d, want the cache's %d", got, st.Bytes)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.TrackedBytes(); got != 0 {
		t.Fatalf("tracked bytes after Close = %d, want 0", got)
	}
	if st := db.ReuseStats(); st.Entries != 0 {
		t.Fatalf("entries survived Close: %+v", st)
	}
}
