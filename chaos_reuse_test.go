package bufferdb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"bufferdb/internal/faultinject"
)

// Chaos coverage for the semantic reuse cache: faults during publish, OOM
// before publish, and eviction/invalidation racing a probe over a pinned
// entry. The containment contract is the usual one — typed errors,
// goroutines and tracked memory at baseline — plus the cache's own: a
// poisoned build or table is never served to a later query.

// reuseChaosQuery builds and probes a hash join and aggregates, reaching
// both publish sites.
const reuseChaosQuery = `SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders
 WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'`

// TestChaosReusePublishFault injects an error and a panic at the ":publish"
// fault site on every engine: the query fails typed, nothing is published
// (a poisoned entry must never be served), and the follow-up query
// rebuilds, repopulates the cache and returns correct rows.
func TestChaosReusePublishFault(t *testing.T) {
	for _, e := range []Engine{EngineVolcano, EngineVec, EnginePush} {
		for _, kind := range []faultinject.Kind{FaultError, FaultPanic} {
			t.Run(fmt.Sprintf("%s/%v", e, kind), func(t *testing.T) {
				db := newReuseDB(t, Options{ReuseCache: true})
				want, err := db.Query(context.Background(), reuseChaosQuery, WithEngine(e), WithoutReuse())
				if err != nil {
					t.Fatal(err)
				}
				base := runtime.NumGoroutine()

				fi := NewFaultInjector(1, Fault{Match: ":publish", Kind: kind})
				_, err = db.Query(context.Background(), reuseChaosQuery,
					WithEngine(e), WithFaultInjector(fi))
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("want ErrInjected, got %v", err)
				}
				if kind == FaultPanic && !errors.Is(err, ErrQueryPanic) {
					t.Fatalf("publish panic not classified: %v", err)
				}
				if fi.Fired() == 0 {
					t.Fatal("publish fault never fired")
				}
				if st := db.ReuseStats(); st.Entries != 0 {
					t.Fatalf("poisoned publish left %d entries in the cache", st.Entries)
				}

				waitGoroutines(t, base)
				// Tracked memory must hold only cache payload — and the cache
				// is empty.
				if got := db.TrackedBytes(); got != 0 {
					t.Fatalf("tracked memory leak after failed publish: %d bytes", got)
				}
				res, err := db.Query(context.Background(), reuseChaosQuery, WithEngine(e))
				if err != nil {
					t.Fatalf("follow-up query failed: %v", err)
				}
				if resultKey(res) != resultKey(want) {
					t.Fatalf("follow-up rows wrong after publish fault:\n got %s\nwant %s",
						resultKey(res), resultKey(want))
				}
				if st := db.ReuseStats(); st.Entries == 0 {
					t.Fatal("follow-up query did not repopulate the cache")
				}
			})
		}
	}
}

// TestChaosReuseOOMDuringBuild blows the per-query memory budget while the
// build the cache wants is under construction: the query fails typed, the
// cache stays empty, and tracked memory returns to zero.
func TestChaosReuseOOMDuringBuild(t *testing.T) {
	for _, e := range []Engine{EngineVolcano, EngineVec, EnginePush} {
		t.Run(string(e), func(t *testing.T) {
			db := newReuseDB(t, Options{ReuseCache: true})
			base := runtime.NumGoroutine()
			_, err := db.Query(context.Background(), reuseChaosQuery,
				WithEngine(e), WithMemoryBudget(4<<10))
			if !errors.Is(err, ErrMemoryBudgetExceeded) {
				t.Fatalf("want ErrMemoryBudgetExceeded, got %v", err)
			}
			if st := db.ReuseStats(); st.Entries != 0 {
				t.Fatalf("OOM-killed build was published: %+v", st)
			}
			waitGoroutines(t, base)
			if got := db.TrackedBytes(); got != 0 {
				t.Fatalf("tracked memory leak after OOM: %d bytes", got)
			}
			if _, err := db.Query(context.Background(), reuseChaosQuery, WithEngine(e)); err != nil {
				t.Fatalf("follow-up query failed: %v", err)
			}
		})
	}
}

// TestChaosReuseOversizePublishRefused: a cache too small for any payload
// refuses every publish without failing the queries that tried.
func TestChaosReuseOversizePublishRefused(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true, ReuseMaxBytes: 1})
	for i := 0; i < 3; i++ {
		if _, err := db.Query(context.Background(), reuseChaosQuery); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	st := db.ReuseStats()
	if st.Entries != 0 || st.Bytes != 0 || st.Hits != 0 {
		t.Fatalf("1-byte cache retained state: %+v", st)
	}
	if got := db.TrackedBytes(); got != 0 {
		t.Fatalf("refused publishes leaked %d tracked bytes", got)
	}
}

// TestChaosReuseInvalidateDuringProbe invalidates every entry while a
// streaming query is probing an adopted build: the pin defers the memory
// release, the probe finishes over correct data, and closing the cursor
// returns tracked memory to zero.
func TestChaosReuseInvalidateDuringProbe(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true})
	want, err := db.Query(context.Background(), reuseChaosQuery, WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	// Publish the join build and aggregate.
	if _, err := db.Query(context.Background(), reuseChaosQuery); err != nil {
		t.Fatal(err)
	}
	if st := db.ReuseStats(); st.Entries == 0 {
		t.Fatal("warm-up published nothing")
	}

	// This run adopts cached state (pinning it) and streams.
	rows, err := db.QueryStream(context.Background(), reuseChaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		rows.Close()
		t.Fatalf("no first row: %v", rows.Err())
	}
	var sum, cnt any
	if err := rows.Scan(&sum, &cnt); err != nil {
		t.Fatal(err)
	}

	// Drop everything mid-probe. Pinned entries are marked dead; their
	// reservations must survive until the cursor lets go.
	db.reuseCache.Invalidate("lineitem")
	db.reuseCache.Invalidate("orders")
	if st := db.ReuseStats(); st.Entries != 0 {
		t.Fatalf("invalidation left %d entries", st.Entries)
	}

	for rows.Next() {
		if err := rows.Scan(&sum, &cnt); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%v\n[%v %v]\n", []string{"SUM(o_totalprice)", "COUNT(*)"}, sum, cnt)
	_ = got // row equality asserted below via a full re-read
	res, err := db.Query(context.Background(), reuseChaosQuery, WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(res) != resultKey(want) {
		t.Fatal("data corrupted after invalidate-during-probe")
	}
	if fmt.Sprint(sum) != fmt.Sprint(want.Rows[0][0]) || fmt.Sprint(cnt) != fmt.Sprint(want.Rows[0][1]) {
		t.Fatalf("probe over dead entry returned [%v %v], want %v", sum, cnt, want.Rows[0])
	}

	// The deferred releases ran at Close: only live cache payload remains,
	// and the cache is empty.
	if got := db.TrackedBytes(); got != 0 {
		t.Fatalf("pinned releases leaked: %d tracked bytes (cache holds %d)",
			got, db.ReuseStats().Bytes)
	}
}

// TestChaosReuseFaultedQueriesPublishOnlyCompleteState: a query that dies
// mid-build publishes nothing; a query that dies downstream of a completed
// build may publish it — completed state is valid whole-relation state —
// and whatever landed in the cache must serve correct rows afterwards.
func TestChaosReuseFaultedQueriesPublishOnlyCompleteState(t *testing.T) {
	db := newReuseDB(t, Options{ReuseCache: true})
	want, err := db.Query(context.Background(), reuseChaosQuery, WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range []string{"Scan", ":build"} {
		fi := NewFaultInjector(1, Fault{Match: match, Kind: FaultError})
		_, err := db.Query(context.Background(), reuseChaosQuery, WithFaultInjector(fi))
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: want ErrInjected, got %v", match, err)
		}
		if st := db.ReuseStats(); st.Entries != 0 {
			t.Fatalf("%s: build died mid-flight yet published %d entries", match, st.Entries)
		}
	}
	// A fault in the aggregate fires after the join build drained its
	// input: the completed build may be published. It must be usable.
	fi := NewFaultInjector(1, Fault{Match: "Aggregate", Kind: FaultError})
	if _, err := db.Query(context.Background(), reuseChaosQuery, WithFaultInjector(fi)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	res, err := db.Query(context.Background(), reuseChaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(res) != resultKey(want) {
		t.Fatalf("entry published by a downstream-faulted query served wrong rows:\n got %s\nwant %s",
			resultKey(res), resultKey(want))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.TrackedBytes(); got != 0 {
		t.Fatalf("faulted queries leaked %d tracked bytes", got)
	}
}
