package bufferdb

import (
	"fmt"
	"io"

	"bufferdb/internal/obsv"
)

// The process-wide metrics every query feeds, labeled by engine:
//
//	bufferdb_queries_total{engine="volcano"}   queries started
//	bufferdb_query_errors_total{engine="..."}  queries that failed
//	bufferdb_rows_emitted_total{engine="..."}  rows handed to consumers
//	bufferdb_query_seconds{engine="..."}       wall-clock latency histogram
//
// Metrics cover Query, QueryStream, prepared statements and the deprecated
// wrappers alike — they all share the same execution path.

// metricQueries returns the started-queries counter for an engine.
func metricQueries(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_queries_total{engine=%q}`, engineLabel(e)))
}

// metricErrors returns the failed-queries counter for an engine.
func metricErrors(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_query_errors_total{engine=%q}`, engineLabel(e)))
}

// metricRows returns the emitted-rows counter for an engine.
func metricRows(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_rows_emitted_total{engine=%q}`, engineLabel(e)))
}

// metricLatency returns the query-latency histogram for an engine.
func metricLatency(e Engine) *obsv.Histogram {
	return obsv.Default.Histogram(fmt.Sprintf(`bufferdb_query_seconds{engine=%q}`, engineLabel(e)), obsv.DefLatencyBounds)
}

// engineLabel normalizes an engine name for metric labels.
func engineLabel(e Engine) string {
	if e == "" {
		return string(EngineVolcano)
	}
	return string(e)
}

// WriteMetrics renders the process-wide metrics registry in the Prometheus
// text exposition format. Hook it to an HTTP handler for scraping:
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
//	    _ = bufferdb.WriteMetrics(w)
//	})
func WriteMetrics(w io.Writer) error {
	return obsv.Default.WritePrometheus(w)
}

// PublishExpvar publishes the metrics registry through the standard
// library's expvar under the name "bufferdb". Safe to call more than once.
func PublishExpvar() {
	obsv.Default.PublishExpvar()
}
