package bufferdb

import (
	"fmt"
	"io"

	"bufferdb/internal/obsv"
)

// The process-wide metrics every query feeds, labeled by engine:
//
//	bufferdb_queries_total{engine="volcano"}   queries started
//	bufferdb_query_errors_total{engine="..."}  queries that failed
//	bufferdb_rows_emitted_total{engine="..."}  rows handed to consumers
//	bufferdb_query_seconds{engine="..."}       wall-clock latency histogram
//
// The resource governor adds failure-class counters and two load gauges:
//
//	bufferdb_queries_rejected_total{engine="..."}  shed by admission control
//	bufferdb_queries_timeout_total{engine="..."}   deadline expiries
//	bufferdb_queries_oom_total{engine="..."}       memory-budget overruns
//	bufferdb_queries_panic_total{engine="..."}     contained operator panics
//	bufferdb_admitted_queries                      queries holding a slot now
//	bufferdb_mem_tracked_bytes                     bytes charged to MemoryLimit
//
// Metrics cover Query, QueryStream, prepared statements and the deprecated
// wrappers alike — they all share the same execution path.

// metricQueries returns the started-queries counter for an engine.
func metricQueries(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_queries_total{engine=%q}`, engineLabel(e)))
}

// metricErrors returns the failed-queries counter for an engine.
func metricErrors(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_query_errors_total{engine=%q}`, engineLabel(e)))
}

// metricRows returns the emitted-rows counter for an engine.
func metricRows(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_rows_emitted_total{engine=%q}`, engineLabel(e)))
}

// metricLatency returns the query-latency histogram for an engine.
func metricLatency(e Engine) *obsv.Histogram {
	return obsv.Default.Histogram(fmt.Sprintf(`bufferdb_query_seconds{engine=%q}`, engineLabel(e)), obsv.DefLatencyBounds)
}

// metricRejected counts queries shed by admission control.
func metricRejected(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_queries_rejected_total{engine=%q}`, engineLabel(e)))
}

// metricTimeout counts queries that hit their deadline.
func metricTimeout(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_queries_timeout_total{engine=%q}`, engineLabel(e)))
}

// metricOOM counts queries that overran a memory budget.
func metricOOM(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_queries_oom_total{engine=%q}`, engineLabel(e)))
}

// metricPanic counts queries that failed on a contained operator panic.
func metricPanic(e Engine) *obsv.Counter {
	return obsv.Default.Counter(fmt.Sprintf(`bufferdb_queries_panic_total{engine=%q}`, engineLabel(e)))
}

// metricAdmitted gauges the queries currently holding an admission slot.
func metricAdmitted() *obsv.Gauge {
	return obsv.Default.Gauge(`bufferdb_admitted_queries`)
}

// metricTrackedBytes gauges the bytes charged against the database
// MemoryLimit; updated as each query settles.
func metricTrackedBytes() *obsv.Gauge {
	return obsv.Default.Gauge(`bufferdb_mem_tracked_bytes`)
}

// engineLabel normalizes an engine name for metric labels.
func engineLabel(e Engine) string {
	if e == "" {
		return string(EngineVolcano)
	}
	return string(e)
}

// WriteMetrics renders the process-wide metrics registry in the Prometheus
// text exposition format. Hook it to an HTTP handler for scraping:
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
//	    _ = bufferdb.WriteMetrics(w)
//	})
func WriteMetrics(w io.Writer) error {
	return obsv.Default.WritePrometheus(w)
}

// PublishExpvar publishes the metrics registry through the standard
// library's expvar under the name "bufferdb". Safe to call more than once.
func PublishExpvar() {
	obsv.Default.PublishExpvar()
}
