package bufferdb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// The chaos suite (go test -run Chaos) drives TPC-H queries on every engine
// while the fault injector forces errors, panics and latency at operator
// boundaries, and asserts the resource governor's containment contract:
// typed errors surface, goroutines and tracked memory return to baseline,
// the failure-class metrics move, and the very next query is correct.

// chaosDB is a dedicated database with memory tracking live (so
// TrackedBytes observes every query) and a fixed refinement threshold (so
// the suite skips calibration).
var chaosDB = func() *DB {
	db, err := OpenTPCH(0.002, Options{
		MemoryLimit:          256 << 20,
		CardinalityThreshold: 100,
	})
	if err != nil {
		panic(err)
	}
	return db
}()

// chaosQuery joins, filters and aggregates, so its plan crosses every
// operator family the governor instruments: scans, a hash join build and
// probe, aggregation, and (with parallelism) exchange workers.
const chaosQuery = `SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders
 WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'`

// chaosEngines enumerates every execution engine.
var chaosEngines = []Engine{EngineVolcano, EngineVec, EnginePush}

// waitGoroutines retries until the goroutine count settles back to (or
// below) the baseline; exchange workers need a moment to observe stop.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	var n int
	for i := 0; i < 100; i++ {
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", n, base)
}

// assertChaosClean asserts the post-failure invariants: no tracked bytes,
// no leaked goroutines, and a correct follow-up query on the same engine.
func assertChaosClean(t *testing.T, e Engine, base int, want string) {
	t.Helper()
	waitGoroutines(t, base)
	if got := chaosDB.TrackedBytes(); got != 0 {
		t.Fatalf("tracked memory leak: %d bytes still charged", got)
	}
	res, err := chaosDB.Query(context.Background(), chaosQuery, WithEngine(e))
	if err != nil {
		t.Fatalf("follow-up query on %s failed: %v", e, err)
	}
	if got := resultKey(res); got != want {
		t.Fatalf("follow-up query on %s returned wrong rows:\n got %s\nwant %s", e, got, want)
	}
}

// chaosWant materializes the correct result once per engine.
func chaosWant(t *testing.T, e Engine) string {
	t.Helper()
	res, err := chaosDB.Query(context.Background(), chaosQuery, WithEngine(e))
	if err != nil {
		t.Fatalf("clean run on %s: %v", e, err)
	}
	return resultKey(res)
}

func TestChaosErrorInjection(t *testing.T) {
	for _, e := range chaosEngines {
		for _, match := range []string{"Scan", "Join", ":build", "Aggregate"} {
			t.Run(fmt.Sprintf("%s/%s", e, match), func(t *testing.T) {
				want := chaosWant(t, e)
				base := runtime.NumGoroutine()
				// After is unset: the rule fires on the site's first
				// invocation, which every matched operator reaches even when
				// it emits a single row (the no-GROUP-BY aggregate) or a
				// handful of batches (vec scans).
				fi := NewFaultInjector(1, Fault{Match: match, Kind: FaultError})
				_, err := chaosDB.Query(context.Background(), chaosQuery,
					WithEngine(e), WithFaultInjector(fi))
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("want ErrInjected, got %v", err)
				}
				if errors.Is(err, ErrQueryPanic) {
					t.Fatalf("plain injected error misclassified as panic: %v", err)
				}
				if fi.Fired() == 0 {
					t.Fatalf("injector reports no fault fired")
				}
				assertChaosClean(t, e, base, want)
			})
		}
	}
}

func TestChaosPanicInjection(t *testing.T) {
	for _, e := range chaosEngines {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/parallelism=%d", e, workers), func(t *testing.T) {
				want := chaosWant(t, e)
				base := runtime.NumGoroutine()
				before := metricPanic(e).Value()
				fi := NewFaultInjector(7, Fault{Match: "Scan", Kind: FaultPanic, After: 5})
				_, err := chaosDB.Query(context.Background(), chaosQuery,
					WithEngine(e), WithFaultInjector(fi), WithParallelism(workers))
				if !errors.Is(err, ErrQueryPanic) {
					t.Fatalf("want ErrQueryPanic, got %v", err)
				}
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("panic error lost the injected sentinel: %v", err)
				}
				if after := metricPanic(e).Value(); after != before+1 {
					t.Fatalf("panic counter moved %d -> %d, want +1", before, after)
				}
				assertChaosClean(t, e, base, want)
			})
		}
	}
}

func TestChaosMemoryBudget(t *testing.T) {
	for _, e := range chaosEngines {
		t.Run(string(e), func(t *testing.T) {
			want := chaosWant(t, e)
			base := runtime.NumGoroutine()
			before := metricOOM(e).Value()
			_, err := chaosDB.Query(context.Background(), chaosQuery,
				WithEngine(e), WithMemoryBudget(4<<10))
			if !errors.Is(err, ErrMemoryBudgetExceeded) {
				t.Fatalf("want ErrMemoryBudgetExceeded, got %v", err)
			}
			if after := metricOOM(e).Value(); after != before+1 {
				t.Fatalf("oom counter moved %d -> %d, want +1", before, after)
			}
			assertChaosClean(t, e, base, want)
		})
	}
}

func TestChaosDeadline(t *testing.T) {
	for _, e := range chaosEngines {
		t.Run(string(e), func(t *testing.T) {
			want := chaosWant(t, e)
			base := runtime.NumGoroutine()
			before := metricTimeout(e).Value()
			// Latency injection slows the scan enough that a 30 ms budget
			// expires mid-execution, without burning real CPU. The vec scan
			// fires once per ~1024-row batch, not per row, so it needs a
			// proportionally longer sleep to guarantee expiry.
			lat := time.Millisecond
			if e == EngineVec {
				lat = 10 * time.Millisecond
			}
			fi := NewFaultInjector(3, Fault{Match: "Scan", Kind: FaultLatency,
				Latency: lat, Every: 1})
			_, err := chaosDB.Query(context.Background(), chaosQuery,
				WithEngine(e), WithFaultInjector(fi), WithTimeout(30*time.Millisecond))
			if !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("want ErrDeadlineExceeded, got %v", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("deadline error lost context.DeadlineExceeded: %v", err)
			}
			if after := metricTimeout(e).Value(); after != before+1 {
				t.Fatalf("timeout counter moved %d -> %d, want +1", before, after)
			}
			assertChaosClean(t, e, base, want)
		})
	}
}

func TestChaosParallelWorkerFaults(t *testing.T) {
	// Faults inside exchange worker goroutines must tear down the whole
	// gather without leaking workers or queued-chunk memory.
	for _, e := range chaosEngines {
		for _, kind := range []struct {
			name string
			f    Fault
		}{
			// After: 2 lands mid-stream for every granularity: the third
			// row on Volcano workers, the third batch on vec workers.
			{"error", Fault{Match: "Scan", Kind: FaultError, After: 2}},
			{"panic", Fault{Match: "Scan", Kind: FaultPanic, After: 2}},
		} {
			t.Run(fmt.Sprintf("%s/%s", e, kind.name), func(t *testing.T) {
				want := chaosWant(t, e)
				base := runtime.NumGoroutine()
				fi := NewFaultInjector(11, kind.f)
				_, err := chaosDB.Query(context.Background(), chaosQuery,
					WithEngine(e), WithFaultInjector(fi), WithParallelism(4))
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("want ErrInjected, got %v", err)
				}
				assertChaosClean(t, e, base, want)
			})
		}
	}
}

func TestChaosAdmissionControl(t *testing.T) {
	db, err := OpenTPCH(0.001, Options{
		CardinalityThreshold: 100,
		Admission:            AdmissionConfig{MaxConcurrent: 1, MaxQueued: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := `SELECT COUNT(*) FROM lineitem`

	// Hold the single slot open with an undrained stream.
	rows, err := db.QueryStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	before := metricRejected(EngineVolcano).Value()
	if _, err := db.Query(ctx, q); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("saturated server: want ErrServerBusy, got %v", err)
	}
	if after := metricRejected(EngineVolcano).Value(); after != before+1 {
		t.Fatalf("rejected counter moved %d -> %d, want +1", before, after)
	}
	// Operational queries bypass admission entirely.
	if _, err := db.Query(ctx, q, WithoutAdmission()); err != nil {
		t.Fatalf("WithoutAdmission should bypass a saturated server: %v", err)
	}
	// A bounded wait sheds after its timeout rather than immediately.
	db2, err := OpenTPCH(0.001, Options{
		CardinalityThreshold: 100,
		Admission:            AdmissionConfig{MaxConcurrent: 1, MaxQueued: 4, WaitTimeout: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := db2.QueryStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := db2.Query(ctx, q); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("queued past WaitTimeout: want ErrServerBusy, got %v", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after %v; the wait queue never waited", waited)
	}
	if err := rows2.Close(); err != nil {
		t.Fatal(err)
	}
	// Releasing the held slot lets new queries through again.
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(ctx, q); err != nil {
		t.Fatalf("freed server still rejecting: %v", err)
	}
	if got := metricAdmitted().Value(); got != 0 {
		t.Fatalf("admitted-queries gauge = %g after all queries finished, want 0", got)
	}
}

func TestChaosConcurrentIsolation(t *testing.T) {
	// A query blowing its budget (and another blowing its deadline) must
	// not disturb an unbudgeted query running at the same time.
	want := chaosWant(t, EngineVolcano)
	done := make(chan error, 1)
	go func() {
		res, err := chaosDB.Query(context.Background(), chaosQuery)
		if err == nil && resultKey(res) != want {
			err = errors.New("unbudgeted query returned wrong rows")
		}
		done <- err
	}()
	if _, err := chaosDB.Query(context.Background(), chaosQuery,
		WithMemoryBudget(4<<10)); !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("budgeted query: want ErrMemoryBudgetExceeded, got %v", err)
	}
	fi := NewFaultInjector(5, Fault{Match: "Scan", Kind: FaultLatency,
		Latency: time.Millisecond, Every: 1})
	if _, err := chaosDB.Query(context.Background(), chaosQuery,
		WithFaultInjector(fi), WithTimeout(30*time.Millisecond)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("deadlined query: want ErrDeadlineExceeded, got %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("concurrent unbudgeted query was disturbed: %v", err)
	}
}

func TestChaosInjectionDeterminism(t *testing.T) {
	// The same seed and rules must fail at the same invocation: two runs
	// produce identical error strings (modulo nothing — the site and
	// invocation number are embedded in the message).
	run := func() string {
		fi := NewFaultInjector(42, Fault{Match: "Join", Kind: FaultError, After: 17})
		_, err := chaosDB.Query(context.Background(), chaosQuery, WithFaultInjector(fi))
		if err == nil {
			t.Fatal("expected injected failure")
		}
		return err.Error()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("injection not deterministic:\n first %s\nsecond %s", a, b)
	}
}
