package bufferdb_test

import (
	"context"
	"fmt"
	"log"

	"bufferdb"
)

// Example demonstrates opening a database and running an aggregate query.
func Example() {
	db, err := bufferdb.OpenTPCH(0.002, bufferdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(context.Background(), `
		SELECT l_returnflag, COUNT(*) AS n
		FROM lineitem
		GROUP BY l_returnflag
		ORDER BY l_returnflag`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		fmt.Println(row...)
	}
	// Output:
	// [l_returnflag n]
	// A 3203
	// N 5532
	// R 3191
}

// ExampleDB_Explain shows the refinement pass inserting a buffer operator
// into the paper's Query 1 plan.
func ExampleDB_Explain() {
	db, err := bufferdb.OpenTPCH(0.002, bufferdb.Options{CardinalityThreshold: 100})
	if err != nil {
		log.Fatal(err)
	}
	_, refined, err := db.Explain(`
		SELECT SUM(l_extendedprice), AVG(l_quantity), COUNT(*)
		FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-02'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(refined)
	// Output:
	// Project(sum(l_extendedprice), avg(l_quantity), count(*))  (rows≈1)
	//   Aggregate(SUM(lineitem.l_extendedprice), AVG(lineitem.l_quantity), COUNT(*))  (rows≈1)
	//     Buffer(size=1024)  (rows≈11926)
	//       SeqScan(lineitem, filter=(lineitem.l_shipdate <= '1998-09-02'))  (rows≈11926)
}
