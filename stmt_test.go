package bufferdb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

const stmtQuery = `
	SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS qty
	FROM lineitem
	WHERE l_shipdate <= DATE '1997-01-01'
	GROUP BY l_returnflag
	ORDER BY l_returnflag`

func TestPrepareMatchesAdHoc(t *testing.T) {
	ctx := context.Background()
	stmt, err := testDB.Prepare(stmtQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := testDB.Query(ctx, stmtQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated executions of the cached plan keep producing the same
	// result — each run clones the plan, so state never leaks between.
	for i := 0; i < 3; i++ {
		got, err := stmt.Query(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Fatalf("execution %d: prepared result %v, ad hoc %v", i, got.Rows, want.Rows)
		}
	}
	if stmt.Text() != stmtQuery {
		t.Errorf("Text() = %q", stmt.Text())
	}
	if !strings.Contains(stmt.Explain(), "Buffer") {
		t.Errorf("prepared plan not refined:\n%s", stmt.Explain())
	}
}

func TestPrepareOptions(t *testing.T) {
	ctx := context.Background()
	stmt, err := testDB.Prepare(stmtQuery, WithEngine(EngineVec))
	if err != nil {
		t.Fatal(err)
	}
	got, err := stmt.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := testDB.Query(ctx, stmtQuery)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("vec prepared result %v, volcano ad hoc %v", got.Rows, want.Rows)
	}
	if _, err := testDB.Prepare(stmtQuery, WithEngine(Engine("gpu"))); err == nil {
		t.Error("unknown engine not rejected at Prepare time")
	}
	if _, err := testDB.Prepare("SELEKT"); err == nil {
		t.Error("parse error not reported at Prepare time")
	}
}

func TestPrepareConcurrent(t *testing.T) {
	ctx := context.Background()
	stmt, err := testDB.Prepare(stmtQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := stmt.Query(ctx)
			if err != nil {
				errs <- err
				return
			}
			if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
				errs <- fmt.Errorf("concurrent execution diverged: %v", got.Rows)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkPreparedVsAdHoc shows what plan caching buys: the prepared path
// skips parsing, optimization and refinement on every execution.
func BenchmarkPreparedVsAdHoc(b *testing.B) {
	ctx := context.Background()
	db, err := OpenTPCH(0.002, Options{CardinalityThreshold: 16})
	if err != nil {
		b.Fatal(err)
	}
	q := `SELECT COUNT(*) FROM lineitem WHERE l_quantity > 45`
	b.Run("adhoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		stmt, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
