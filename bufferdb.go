// Package bufferdb is a main-memory SQL query engine that reproduces
// Zhou & Ross, "Buffering Database Operations for Enhanced Instruction
// Cache Performance" (SIGMOD 2004).
//
// The engine executes a demand-pull (Volcano-style) operator pipeline over
// a memory-resident TPC-H database, and implements the paper's
// contribution: a light-weight buffer operator plus an instruction-
// footprint-driven plan refinement pass that inserts buffers where they
// eliminate L1 instruction-cache thrashing. Every query can optionally run
// against a cycle-approximate simulated CPU (caches, ITLB, branch
// predictor) whose counters regenerate the paper's figures and tables.
//
// Typical use:
//
//	db, err := bufferdb.OpenTPCH(0.01, bufferdb.Options{})
//	res, err := db.Query(ctx, `SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'`)
//	res, err = db.Query(ctx, `SELECT ...`, bufferdb.WithEngine(bufferdb.EngineVec))
//	an, err := db.ExplainAnalyze(ctx, `SELECT ...`)
//	fmt.Println(an) // per-operator rows, buffer drains, simulated cycle attribution
//	prof, err := db.Profile(`SELECT ...`)
//	fmt.Println(prof.Buffered.L1IMisses, "instruction cache misses after refinement")
package bufferdb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/core"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/pager"
	"bufferdb/internal/plan"
	"bufferdb/internal/reuse"
	"bufferdb/internal/shard"
	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

// Options configures a database instance.
type Options struct {
	// Seed fixes TPC-H data generation (0 = default seed).
	Seed uint64
	// BufferSize is the capacity of inserted buffer operators
	// (0 = the paper's default, 1024 tuples).
	BufferSize int
	// CardinalityThreshold is the refinement cutoff; 0 calibrates it on
	// first use, reproducing the paper's §6 methodology.
	CardinalityThreshold float64
	// DisableRefinement turns the post-optimizer buffer pass off, so
	// Query always runs the conventional plan.
	DisableRefinement bool
	// Parallelism is the default worker fan-out for partitioned scan
	// pipelines (values < 2 run sequentially). Eligible scan subtrees are
	// wrapped in a gather (exchange) operator after plan refinement;
	// results are byte-identical to the sequential plan for any value.
	Parallelism int
	// MemoryLimit caps the bytes all concurrently executing queries may
	// hold in tracked allocations (hash tables, sort buffers, buffer
	// arrays, exchange queues). 0 disables process-wide tracking; queries
	// then only track when they carry a WithMemoryBudget of their own.
	MemoryLimit int64
	// Admission bounds concurrent query execution; the zero value disables
	// admission control. See AdmissionConfig.
	Admission AdmissionConfig
	// DataDir, when set, backs the database with the persistent storage
	// tier (internal/pager): tables live in slotted-page heap files and
	// stream through a buffer pool, INSERT works and survives restarts via
	// the write-ahead log. OpenTPCH loads an existing data directory when
	// one is present and otherwise generates and persists the dataset.
	DataDir string
	// PoolBytes bounds buffer-pool residency in bytes (0 = 4 MiB). With a
	// MemoryLimit set, pool residency is charged against it, so the page
	// cache and executing queries compete under one budget.
	PoolBytes int64
	// Eviction names the buffer-pool eviction policy: "lru" (default) or
	// "gdsf".
	Eviction string
	// ShardCount, when > 1, loads this database as one shard of a
	// hash-partitioned deployment: OpenTPCH generates the full dataset
	// (deterministically, from Seed) and keeps only the rows the default
	// TPC-H shard map assigns to ShardIndex; replicated tables stay whole.
	// Incompatible with DataDir. ShardIndex must be in [0, ShardCount).
	ShardCount int
	// ShardIndex is this node's position in [0, ShardCount).
	ShardIndex int
	// ReuseCache enables the semantic reuse cache: completed hash-join
	// build sides and aggregate tables are published process-wide and
	// spliced into later queries whose normalized subplan fingerprints
	// match — across engines, prepared and ad-hoc statements alike.
	// Results are bit-identical with the cache on or off; an INSERT into a
	// referenced table invalidates exactly its dependent entries.
	ReuseCache bool
	// ReuseMaxBytes bounds the reuse cache's resident payload bytes
	// (0 = 64 MiB). With a MemoryLimit set, cached intermediates are
	// charged against it through ReserveMemory.
	ReuseMaxBytes int64
}

// Engine names an execution model for WithEngine. The name round-trips
// through ParseEngine and Engine.String; those two are the only places in
// the tree that may compare or produce engine-name strings.
type Engine string

// Available engines.
const (
	// EngineVolcano is the default tuple-at-a-time iterator engine, with
	// buffer operators inserted by plan refinement.
	EngineVolcano Engine = "volcano"
	// EngineVec is the block-oriented (vectorized) engine: operators with
	// batch variants exchange 1024-tuple batches; the rest run as Volcano
	// islands behind adapters.
	EngineVec Engine = "vec"
	// EnginePush is the push-fused compiled engine: each execution group
	// runs as a single producer-driven loop, materializing only at
	// pipeline breakers; uncovered plan nodes run as Volcano islands
	// behind adapter sources.
	EnginePush Engine = "push"
)

// String returns the engine's display name.
func (e Engine) String() string { return string(e) }

// EngineNames lists every selectable engine name, in display order.
func EngineNames() []string { return plan.EngineNames() }

// ParseEngine resolves an engine name through the planner's canonical
// parser — the single engine-name parser in the tree. Every consumer (CLI
// flags, daemon config, the wire protocol's ExecOptions decoding, REPL
// meta-commands) routes through it, so an unknown name always surfaces a
// wrapped ErrUnknownEngine carrying the offending name and the valid set,
// and adding an engine to plan.Engines makes it selectable everywhere.
func ParseEngine(name string) (Engine, error) {
	pe, err := plan.ParseEngine(name)
	if err != nil {
		return "", fmt.Errorf("bufferdb: %w %q (valid: %s)", ErrUnknownEngine, name, strings.Join(EngineNames(), ", "))
	}
	return Engine(pe.String()), nil
}

// QueryOptions tune a single statement. Callers set them through the
// functional QueryOption values (WithEngine, WithParallelism, …) passed to
// Query, QueryStream, ExplainAnalyze and Prepare; the struct remains
// exported for bulk entry points like Profile that take a whole bundle.
type QueryOptions struct {
	// ForceJoin selects the join algorithm: "hash", "nestloop", "merge".
	ForceJoin string
	// DisableRefinement runs the conventional plan for this query only.
	DisableRefinement bool
	// BufferSize overrides the per-database buffer capacity.
	BufferSize int
	// Parallelism overrides the per-database scan fan-out for this
	// statement (0 keeps the database default, 1 forces sequential).
	Parallelism int
	// Engine overrides the database's execution engine for this statement
	// ("" keeps the database default).
	Engine Engine
	// CollectStats attaches a per-operator stats collector to the
	// execution; read the result through Rows.Stats.
	CollectStats bool
	// MemoryBudget caps this query's tracked allocations in bytes
	// (0 = no per-query cap; the database MemoryLimit still applies).
	MemoryBudget int64
	// Timeout bounds the query's wall clock from admission through
	// execution; expiry surfaces a wrapped ErrDeadlineExceeded.
	Timeout time.Duration
	// Deadline is the absolute form of Timeout; Timeout wins if both are
	// set. The zero time means no deadline.
	Deadline time.Time
	// AdmissionWait overrides the database's admission WaitTimeout for
	// this query (0 keeps the database default).
	AdmissionWait time.Duration
	// NoAdmission exempts this query from admission control — for
	// operational queries that must run even on a saturated server.
	NoAdmission bool
	// FaultInjector injects deterministic faults at operator boundaries
	// for testing; nil (the default) costs nothing. See NewFaultInjector.
	FaultInjector *FaultInjector
	// NoReuse opts this statement out of the semantic reuse cache: it
	// neither adopts published intermediates nor publishes its own.
	NoReuse bool
}

// QueryOption is a functional per-statement option.
type QueryOption func(*QueryOptions)

// WithEngine runs the statement on the given execution engine.
func WithEngine(e Engine) QueryOption {
	return func(o *QueryOptions) { o.Engine = e }
}

// WithForceJoin forces the join algorithm: "hash", "nestloop", "merge".
func WithForceJoin(method string) QueryOption {
	return func(o *QueryOptions) { o.ForceJoin = method }
}

// WithBufferSize overrides the capacity of buffers the refinement pass
// inserts for this statement.
func WithBufferSize(n int) QueryOption {
	return func(o *QueryOptions) { o.BufferSize = n }
}

// WithParallelism overrides the scan fan-out for this statement
// (1 forces sequential execution).
func WithParallelism(workers int) QueryOption {
	return func(o *QueryOptions) { o.Parallelism = workers }
}

// WithoutRefinement runs the conventional (unbuffered) plan.
func WithoutRefinement() QueryOption {
	return func(o *QueryOptions) { o.DisableRefinement = true }
}

// WithStats collects per-operator runtime counters during execution; read
// them through Rows.Stats after draining the cursor. Collection never
// changes results — it only counts what the operators do.
func WithStats() QueryOption {
	return func(o *QueryOptions) { o.CollectStats = true }
}

// WithMemoryBudget caps this query's tracked allocations at n bytes;
// exceeding it fails the query with a wrapped ErrMemoryBudgetExceeded.
func WithMemoryBudget(n int64) QueryOption {
	return func(o *QueryOptions) { o.MemoryBudget = n }
}

// WithTimeout bounds the query's wall clock, covering any admission wait;
// expiry surfaces a wrapped ErrDeadlineExceeded.
func WithTimeout(d time.Duration) QueryOption {
	return func(o *QueryOptions) { o.Timeout = d }
}

// WithDeadline is the absolute form of WithTimeout.
func WithDeadline(t time.Time) QueryOption {
	return func(o *QueryOptions) { o.Deadline = t }
}

// WithAdmissionWait overrides how long this query may queue for an
// execution slot before being shed with ErrServerBusy.
func WithAdmissionWait(d time.Duration) QueryOption {
	return func(o *QueryOptions) { o.AdmissionWait = d }
}

// WithoutAdmission exempts this query from admission control.
func WithoutAdmission() QueryOption {
	return func(o *QueryOptions) { o.NoAdmission = true }
}

// WithFaultInjector attaches a deterministic fault injector to this
// query's execution — a testing hook; see NewFaultInjector.
func WithFaultInjector(fi *FaultInjector) QueryOption {
	return func(o *QueryOptions) { o.FaultInjector = fi }
}

// WithoutReuse opts this statement out of the semantic reuse cache: it
// neither adopts published intermediates nor publishes its own.
func WithoutReuse() QueryOption {
	return func(o *QueryOptions) { o.NoReuse = true }
}

// applyOptions folds functional options into a QueryOptions value.
func applyOptions(opts []QueryOption) QueryOptions {
	var qo QueryOptions
	for _, opt := range opts {
		opt(&qo)
	}
	return qo
}

// DB is one memory-resident database with its code model and refinement
// calibration. A DB is safe for concurrent use: the catalog and code model
// are read-only after load (the code model's lazy module assembly is
// internally synchronized), the refinement threshold is calibrated at most
// once behind a sync.Once, and every query executes on its own
// exec.Context with private simulated-CPU state. Views returned by
// WithEngine share all of that with the receiver.
type DB struct {
	opts   Options
	engine Engine

	cat *storage.Catalog
	cm  *codemodel.Catalog

	cal *calibration

	// mem is the process-wide memory tracker (nil when Options.MemoryLimit
	// is 0); every query's tracker is its child. adm is the admission
	// controller (nil when disabled). Both are shared by WithEngine views.
	mem *exec.MemTracker
	adm *admission

	// store is the persistent storage tier when Options.DataDir is set;
	// poolMem is the tracker charged with buffer-pool residency (a child of
	// mem when a MemoryLimit exists). closed guards double-Close across
	// engine views sharing the store.
	store   *pager.Store
	poolMem *exec.MemTracker
	closed  *sync.Once

	// epochs tracks per-table write epochs (always present); reuseCache is
	// the semantic reuse cache when Options.ReuseCache is set (nil
	// otherwise). Both are shared by WithEngine views.
	epochs     *reuse.Epochs
	reuseCache *reuse.Cache
}

// calibration is the lazily-computed refinement threshold, shared by every
// engine view of a DB so concurrent first queries calibrate exactly once.
type calibration struct {
	once      sync.Once
	threshold float64
	err       error
}

// WithEngine returns a view of the database that plans and executes queries
// with the given engine. The view shares the catalog, code model and
// refinement calibration with the receiver; an empty engine name selects
// EngineVolcano.
func (db *DB) WithEngine(e Engine) *DB {
	cp := *db
	cp.engine = e
	return &cp
}

// planEngine maps the statement's effective engine (the per-query override,
// else the view's) to the compiler's engine switch through the canonical
// ParseEngine round-trip. Unknown names are rejected rather than silently
// running on Volcano.
func (db *DB) planEngine(qo QueryOptions) (Engine, plan.Engine, error) {
	e := db.engine
	if qo.Engine != "" {
		e = qo.Engine
	}
	if e == "" {
		e = EngineVolcano
	}
	pe, err := plan.ParseEngine(e.String())
	if err != nil {
		return e, 0, fmt.Errorf("bufferdb: %w %q (valid: %s)", ErrUnknownEngine, e, strings.Join(EngineNames(), ", "))
	}
	return e, pe, nil
}

// OpenTPCH generates a TPC-H database at the given scale factor (the paper
// evaluates at 0.2; 0.01–0.05 is comfortable for interactive use). A scale
// factor that is zero, negative, NaN or infinite is rejected with a wrapped
// ErrBadScaleFactor rather than generating an empty or garbage catalog.
func OpenTPCH(scaleFactor float64, opts Options) (*DB, error) {
	if opts.DataDir != "" {
		if opts.ShardCount > 1 {
			return nil, fmt.Errorf("bufferdb: ShardCount is incompatible with DataDir (the persistent tier is single-node)")
		}
		return openTPCHPersistent(scaleFactor, opts)
	}
	cat, err := tpch.Generate(tpch.Config{ScaleFactor: scaleFactor, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	if opts.ShardCount > 1 {
		cat, err = shard.Filter(cat, shard.DefaultTPCH(), opts.ShardIndex, opts.ShardCount)
		if err != nil {
			return nil, err
		}
	}
	db := newDB(opts)
	db.cat = cat
	return db, nil
}

// OpenTPCHReplicas opens one database per hosted slice for a replicated
// shard node: the full TPC-H dataset is generated once (deterministically,
// from opts.Seed, so every node derives identical slices) and filtered down
// to each requested slice index. opts.ShardCount must name the fleet-wide
// slice count; opts.ShardIndex is ignored in favor of the explicit slice
// list. Replicated dimension tables are shared by reference across the
// returned databases — only the sharded tables cost per-slice memory.
func OpenTPCHReplicas(scaleFactor float64, opts Options, slices []int) (map[int]*DB, error) {
	if opts.DataDir != "" {
		return nil, fmt.Errorf("bufferdb: replicated slices are incompatible with DataDir (the persistent tier is single-node)")
	}
	if opts.ShardCount < 1 {
		return nil, fmt.Errorf("bufferdb: OpenTPCHReplicas requires ShardCount >= 1")
	}
	if len(slices) == 0 {
		return nil, fmt.Errorf("bufferdb: OpenTPCHReplicas requires at least one slice")
	}
	full, err := tpch.Generate(tpch.Config{ScaleFactor: scaleFactor, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	out := make(map[int]*DB, len(slices))
	for _, idx := range slices {
		cat, err := shard.Filter(full, shard.DefaultTPCH(), idx, opts.ShardCount)
		if err != nil {
			return nil, err
		}
		sliceOpts := opts
		sliceOpts.ShardIndex = idx
		db := newDB(sliceOpts)
		db.cat = cat
		out[idx] = db
	}
	return out, nil
}

// newDB builds the engine-side of a database (code model, calibration,
// governor) without a catalog; callers attach one.
func newDB(opts Options) *DB {
	db := &DB{
		opts:   opts,
		cm:     codemodel.NewCatalog(),
		cal:    &calibration{},
		adm:    newAdmission(opts.Admission),
		closed: &sync.Once{},
		epochs: reuse.NewEpochs(),
	}
	if opts.MemoryLimit > 0 {
		db.mem = exec.NewMemTracker("process", opts.MemoryLimit, nil)
	}
	if opts.ReuseCache {
		maxBytes := opts.ReuseMaxBytes
		if maxBytes <= 0 {
			maxBytes = DefaultReuseMaxBytes
		}
		db.reuseCache = reuse.New(maxBytes, db.epochs, db.ReserveMemory)
	}
	return db
}

// DefaultReuseMaxBytes is the reuse cache's payload bound when
// Options.ReuseMaxBytes is zero.
const DefaultReuseMaxBytes int64 = 64 << 20

// ReuseStats is a point-in-time snapshot of the semantic reuse cache's
// counters; the zero value means the cache is disabled.
type ReuseStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Entries       int
	Bytes         int64
	MaxBytes      int64
}

// ReuseStats snapshots the semantic reuse cache's counters (zero value when
// Options.ReuseCache is off).
func (db *DB) ReuseStats() ReuseStats {
	s := db.reuseCache.Stats()
	return ReuseStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Invalidations: s.Invalidations,
		Entries:       s.Entries,
		Bytes:         s.Bytes,
		MaxBytes:      s.MaxBytes,
	}
}

// TableEpoch reports a table's write epoch: it starts at zero and each
// INSERT into the table bumps it. Server-side caches tag entries with the
// epochs of the tables they read and revalidate on lookup, so a write
// invalidates exactly its dependents.
func (db *DB) TableEpoch(table string) uint64 { return db.epochs.Of(table) }

// TableEpochs snapshots the write epochs of the given tables.
func (db *DB) TableEpochs(tables []string) map[string]uint64 { return db.epochs.Snapshot(tables) }

// TrackedBytes reports the bytes currently charged against the database's
// memory limit by executing queries; 0 when no MemoryLimit is set. Idle
// databases report 0 — a nonzero value with no query running indicates an
// accounting leak.
func (db *DB) TrackedBytes() int64 { return db.mem.Bytes() }

// ReserveMemory charges n bytes of subsystem memory — server-side plan and
// result caches, wire buffers — against the database's MemoryLimit, so
// caches built on top of the engine compete with executing queries for the
// same budget instead of growing outside it. The returned release function
// returns the bytes; it is idempotent. With no MemoryLimit configured the
// reservation is accepted untracked. A rejected reservation wraps
// ErrMemoryBudgetExceeded.
func (db *DB) ReserveMemory(name string, n int64) (release func(), err error) {
	if db.mem == nil {
		return func() {}, nil
	}
	t := exec.NewMemTracker(name, 0, db.mem)
	if err := t.Grow(n); err != nil {
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() { t.Shrink(n) })
	}, nil
}

// Tables lists the table names in the database.
func (db *DB) Tables() []string {
	var out []string
	for _, t := range db.cat.Tables() {
		out = append(out, t.Name())
	}
	return out
}

// RowCount returns a table's cardinality.
func (db *DB) RowCount(table string) (int, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return 0, err
	}
	return t.NumRows(), nil
}

// Threshold returns the refinement cardinality threshold, calibrating it on
// first use when the options left it at zero. Concurrent callers block on a
// single calibration run and share its result.
func (db *DB) Threshold() (float64, error) {
	db.cal.once.Do(func() {
		if db.opts.CardinalityThreshold > 0 {
			db.cal.threshold = db.opts.CardinalityThreshold
			return
		}
		res, err := core.CalibrateThreshold(db.cm, cpusim.DefaultConfig(), 4096,
			[]int{0, 16, 64, 256, 1024, 4096}, db.opts.BufferSize)
		if err != nil {
			db.cal.err = err
			return
		}
		db.cal.threshold = res.Threshold
	})
	return db.cal.threshold, db.cal.err
}

// parallelism resolves the effective scan fan-out for a statement.
func (db *DB) parallelism(qo QueryOptions) int {
	if qo.Parallelism != 0 {
		return qo.Parallelism
	}
	return db.opts.Parallelism
}

// plan builds the (optionally refined, optionally parallelized) physical
// plan for a statement. Refinement runs first — it reasons about the
// sequential pipeline's instruction footprint — and parallelization then
// wraps eligible pipelines, buffers included, below the gather.
func (db *DB) plan(query string, qo QueryOptions) (*plan.Node, error) {
	p, err := sql.PlanQuery(query, db.cat, sql.Options{ForceJoin: sql.JoinMethod(qo.ForceJoin)})
	if err != nil {
		return nil, err
	}
	if !db.opts.DisableRefinement && !qo.DisableRefinement {
		threshold, err := db.Threshold()
		if err != nil {
			return nil, err
		}
		size := qo.BufferSize
		if size == 0 {
			size = db.opts.BufferSize
		}
		p, _, err = plan.Refine(p, db.cm, plan.RefineOptions{
			CardinalityThreshold: threshold,
			BufferSize:           size,
		})
		if err != nil {
			return nil, err
		}
	}
	return plan.Parallelize(p, db.parallelism(qo)), nil
}

// Result is a query result with native Go values.
type Result struct {
	// Columns names the output attributes.
	Columns []string
	// Rows holds one slice per result row; cell types are int64, float64,
	// string, bool, time.Time, or nil for SQL NULL.
	Rows [][]any
}

// Query plans (with refinement, unless disabled), executes, and returns the
// materialized result. Per-statement tuning rides on functional options:
//
//	res, err := db.Query(ctx, sql, bufferdb.WithEngine(bufferdb.EngineVec),
//	    bufferdb.WithParallelism(4))
//
// The context cancels the query mid-execution. Use QueryStream to consume
// large results incrementally.
func (db *DB) Query(ctx context.Context, query string, opts ...QueryOption) (*Result, error) {
	return db.queryMaterialized(ctx, query, applyOptions(opts))
}

// queryMaterialized drains a streaming cursor into a Result.
func (db *DB) queryMaterialized(ctx context.Context, query string, qo QueryOptions) (*Result, error) {
	rows, err := db.queryStream(ctx, query, qo)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		r := rows.row
		out := make([]any, len(r))
		for i, v := range r {
			out[i] = nativeValue(v)
		}
		res.Rows = append(res.Rows, out)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// nativeValue converts an engine value to a plain Go value.
func nativeValue(v storage.Value) any {
	switch v.Kind {
	case storage.TypeNull:
		return nil
	case storage.TypeBool:
		return v.Bool()
	case storage.TypeInt64:
		return v.I
	case storage.TypeFloat64:
		return v.F
	case storage.TypeString:
		return v.S
	case storage.TypeDate:
		return time.Unix(v.I*86400, 0).UTC()
	default:
		return v.String()
	}
}

// Explain returns the conventional and the refined plan for a statement.
// With Parallelism in effect, the refined side additionally shows the
// gather (exchange) operators the parallelization pass inserted. Options
// are the same variadic set Query takes.
func (db *DB) Explain(query string, opts ...QueryOption) (original, refined string, err error) {
	qo := applyOptions(opts)
	p, err := sql.PlanQuery(query, db.cat, sql.Options{ForceJoin: sql.JoinMethod(qo.ForceJoin)})
	if err != nil {
		return "", "", err
	}
	threshold, err := db.Threshold()
	if err != nil {
		return "", "", err
	}
	r, _, err := plan.Refine(p, db.cm, plan.RefineOptions{
		CardinalityThreshold: threshold,
		BufferSize:           db.opts.BufferSize,
	})
	if err != nil {
		return "", "", err
	}
	r = plan.Parallelize(r, db.parallelism(qo))
	return plan.Explain(p), plan.Explain(r), nil
}

// RunStats are the simulated hardware counters of one plan execution.
type RunStats struct {
	ElapsedSec  float64
	CPI         float64
	Cycles      float64
	Uops        uint64
	L1IMisses   uint64
	L1DMisses   uint64
	L2Misses    uint64
	ITLBMisses  uint64
	Branches    uint64
	Mispredicts uint64
}

// Profile compares the conventional and the refined plan of a statement on
// the simulated CPU.
type Profile struct {
	Original RunStats
	Buffered RunStats
	// ImprovementPct is the relative simulated-time gain of the refined plan.
	ImprovementPct float64
	// BuffersInserted counts buffer operators the refinement added.
	BuffersInserted int
}

// Profile executes a statement twice on fresh simulated CPUs — once as
// planned, once refined — and reports the paper's comparison metrics.
// Options are the same variadic set Query takes.
func (db *DB) Profile(query string, opts ...QueryOption) (*Profile, error) {
	qo := applyOptions(opts)
	p, err := sql.PlanQuery(query, db.cat, sql.Options{ForceJoin: sql.JoinMethod(qo.ForceJoin)})
	if err != nil {
		return nil, err
	}
	threshold, err := db.Threshold()
	if err != nil {
		return nil, err
	}
	size := qo.BufferSize
	if size == 0 {
		size = db.opts.BufferSize
	}
	refined, _, err := plan.Refine(p, db.cm, plan.RefineOptions{
		CardinalityThreshold: threshold,
		BufferSize:           size,
	})
	if err != nil {
		return nil, err
	}

	run := func(node *plan.Node) (RunStats, uint64, error) {
		cpu, err := cpusim.New(cpusim.DefaultConfig(), db.cm.TextSegmentBytes())
		if err != nil {
			return RunStats{}, 0, err
		}
		placements := exec.PlaceCatalog(cpu, db.cat)
		op, err := plan.Build(node, db.cm)
		if err != nil {
			return RunStats{}, 0, err
		}
		rows, err := exec.Run(&exec.Context{Catalog: db.cat, CPU: cpu, Placements: placements}, op)
		if err != nil {
			return RunStats{}, 0, err
		}
		ctr := cpu.Counters()
		return RunStats{
			ElapsedSec:  cpu.ElapsedSeconds(),
			CPI:         cpu.CPI(),
			Cycles:      cpu.TotalCycles(),
			Uops:        ctr.Uops,
			L1IMisses:   ctr.L1IMisses,
			L1DMisses:   ctr.L1DMisses,
			L2Misses:    ctr.L2Misses + ctr.L2MissesPrefetched,
			ITLBMisses:  ctr.ITLBMisses,
			Branches:    ctr.Branches,
			Mispredicts: ctr.Mispredicts,
		}, exec.HashRows(rows), nil
	}

	orig, hashA, err := run(p)
	if err != nil {
		return nil, err
	}
	buf, hashB, err := run(refined)
	if err != nil {
		return nil, err
	}
	if hashA != hashB {
		return nil, fmt.Errorf("bufferdb: refined plan changed the result (hash %x vs %x)", hashB, hashA)
	}
	prof := &Profile{
		Original:        orig,
		Buffered:        buf,
		BuffersInserted: plan.CountKind(refined, plan.KindBuffer),
	}
	if orig.ElapsedSec > 0 {
		prof.ImprovementPct = (1 - buf.ElapsedSec/orig.ElapsedSec) * 100
	}
	return prof, nil
}
