package bufferdb

import (
	"context"
	"fmt"
	"time"

	"bufferdb/internal/exec"
	"bufferdb/internal/pager"
	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

// Open opens an existing persistent database (Options.DataDir must name a
// directory previously populated by OpenTPCH with a DataDir, or by the
// pager API directly). Crash recovery runs inside: committed WAL batches
// replay, the torn tail is discarded, and the store starts checkpointed.
func Open(opts Options) (*DB, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("bufferdb: Open needs Options.DataDir (use OpenTPCH for an in-memory database)")
	}
	if !pager.HasCatalog(opts.DataDir) {
		return nil, fmt.Errorf("bufferdb: no database in %s: %w", opts.DataDir, ErrUnknownTable)
	}
	db := newDB(opts)
	if err := db.attachStore(); err != nil {
		return nil, err
	}
	return db, nil
}

// openTPCHPersistent is OpenTPCH's DataDir mode: load the directory when it
// already holds a database, otherwise generate the dataset once, bulk-load
// it into heap files and checkpoint. Either way the catalog's tables are
// paged — scans stream through the buffer pool, and INSERT works.
func openTPCHPersistent(scaleFactor float64, opts Options) (*DB, error) {
	db := newDB(opts)
	if pager.HasCatalog(opts.DataDir) {
		if err := db.attachStore(); err != nil {
			return nil, err
		}
		return db, nil
	}
	gen, err := tpch.Generate(tpch.Config{ScaleFactor: scaleFactor, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	if err := db.attachStore(); err != nil {
		return nil, err
	}
	for _, t := range gen.Tables() {
		if _, err := db.store.CreateTable(t.Name(), t.Schema()); err != nil {
			db.Close()
			return nil, err
		}
		if err := db.store.BulkLoad(t.Name(), t.Rows()); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.store.Checkpoint(); err != nil {
		db.Close()
		return nil, err
	}
	// Rebuild the catalog so the freshly loaded tables are visible.
	db.cat = storage.NewCatalog()
	for _, t := range db.store.Tables() {
		db.cat.MustAdd(t)
	}
	return db, nil
}

// attachStore opens the pager store and mirrors its tables into the
// database catalog. Paged tables carry no secondary indexes — the planner
// falls back to hash joins — because the btrees would have to be maintained
// under concurrent INSERTs; an LSM-style index tier is future work.
func (db *DB) attachStore() error {
	if db.mem != nil {
		db.poolMem = exec.NewMemTracker("pager-pool", 0, db.mem)
	}
	store, err := pager.Open(db.opts.DataDir, pager.Options{
		PoolBytes: db.opts.PoolBytes,
		Eviction:  db.opts.Eviction,
		Mem:       db.poolMem,
	})
	if err != nil {
		return err
	}
	db.store = store
	db.cat = storage.NewCatalog()
	for _, t := range store.Tables() {
		db.cat.MustAdd(t)
	}
	return nil
}

// Close checkpoints and releases the persistent storage tier, draining the
// buffer pool's memory charge; afterwards TrackedBytes reports only
// executing queries (0 when idle). Close is idempotent, safe on a nil DB
// and on purely in-memory databases (where it does nothing), and shared by
// WithEngine views — the first Close wins.
func (db *DB) Close() error {
	if db == nil || db.closed == nil {
		return nil
	}
	var err error
	db.closed.Do(func() {
		db.reuseCache.Close()
		if db.store != nil {
			err = db.store.Close()
		}
	})
	return err
}

// PagerStats is a snapshot of the buffer pool's traffic counters; zero for
// in-memory databases.
type PagerStats struct {
	Hits, Misses, Evictions, Writebacks uint64
	ResidentPages                       int
}

// PagerStats reports the persistent tier's buffer-pool counters.
func (db *DB) PagerStats() PagerStats {
	if db.store == nil {
		return PagerStats{}
	}
	s := db.store.PoolStats()
	return PagerStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Writebacks: s.Writebacks, ResidentPages: s.ResidentPages,
	}
}

// execInsert is the write path: parse, type-check against the catalog,
// append through the store's WAL (fsync-on-commit), and return a one-row
// cursor carrying the inserted count. Writes bypass plan refinement and
// admission control — they touch no operator pipeline at all.
func (db *DB) execInsert(ctx context.Context, query string, qo QueryOptions) (*Rows, error) {
	label, _, err := db.planEngine(qo)
	if err != nil {
		return nil, err
	}
	metricQueries(label).Inc()
	fail := func(err error) (*Rows, error) {
		classifyError(label, err)
		metricErrors(label).Inc()
		return nil, err
	}
	stmt, err := sql.ParseInsert(query)
	if err != nil {
		return fail(err)
	}
	name, rows, err := sql.AnalyzeInsert(db.cat, stmt)
	if err != nil {
		return fail(err)
	}
	t, err := db.cat.Table(name)
	if err != nil {
		return fail(err)
	}
	if db.store == nil || !t.Paged() {
		return fail(fmt.Errorf("bufferdb: INSERT INTO %s: %w (open with Options.DataDir for writable tables)", name, ErrReadOnly))
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	if err := db.store.Insert(name, rows); err != nil {
		return fail(err)
	}
	// The write landed: advance the table's epoch (so in-flight publishes
	// fingerprinted before this INSERT are refused) and drop every cached
	// intermediate that read the table. Entries over untouched tables
	// survive. Both are nil-safe when the reuse cache is off.
	db.epochs.Bump(name)
	db.reuseCache.Invalidate(name)

	sch := storage.Schema{{Name: "inserted", Type: storage.TypeInt64}}
	op := exec.NewValues(sch, []storage.Row{{storage.NewInt(int64(len(rows)))}})
	ectx := &exec.Context{Catalog: db.cat, Ctx: ctx}
	if err := exec.CallOpen(ectx, op); err != nil {
		return fail(err)
	}
	return &Rows{
		ectx:        ectx,
		op:          op,
		cols:        []string{"inserted"},
		schema:      sch,
		db:          db,
		engineLabel: string(label),
		started:     time.Now(),
	}, nil
}
