// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices DESIGN.md §7 calls out.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN / BenchmarkTableN executes the corresponding
// experiment driver (internal/bench); custom metrics expose the paper's
// headline quantities (miss reductions, improvement percentages) so the
// benchmark output doubles as a compact results table. The wall-clock
// benchmarks at the end measure the *real* Go-side gain of tuple batching,
// independent of the simulator.
package bufferdb

import (
	"sync"
	"testing"

	"bufferdb/internal/bench"
	"bufferdb/internal/codemodel"
	"bufferdb/internal/core"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// benchSF keeps the full -bench=. sweep around a minute; raise it (and the
// paper's SF 0.2) via the benchrunner CLI for the EXPERIMENTS.md numbers.
const benchSF = 0.005

var (
	runnerOnce sync.Once
	runner     *bench.Runner
)

func benchRunner(b *testing.B) *bench.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		r, err := bench.NewRunner(bench.Config{ScaleFactor: benchSF})
		if err != nil {
			panic(err)
		}
		runner = r
	})
	return runner
}

// runExperiment drives one experiment per iteration.
func runExperiment(b *testing.B, id string) {
	r := benchRunner(b)
	e, ok := bench.FindExperiment(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1OperatorSequence(b *testing.B)     { runExperiment(b, "fig1") }
func BenchmarkTable1Spec(b *testing.B)               { runExperiment(b, "table1") }
func BenchmarkTable2Footprints(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkFig4Query1Breakdown(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig9Query2(b *testing.B)               { runExperiment(b, "fig9") }
func BenchmarkFig11Cardinality(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12BufferSize(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13BufferSizeDetail(b *testing.B)    { runExperiment(b, "fig13") }
func BenchmarkFig15NestLoop(b *testing.B)            { runExperiment(b, "fig15") }
func BenchmarkFig16HashJoin(b *testing.B)            { runExperiment(b, "fig16") }
func BenchmarkFig17MergeJoin(b *testing.B)           { runExperiment(b, "fig17") }
func BenchmarkTable3OverallImprovement(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4CPI(b *testing.B)                { runExperiment(b, "table4") }
func BenchmarkTable5TPCH(b *testing.B)               { runExperiment(b, "table5") }

// BenchmarkFig10Query1 is the headline experiment; it additionally reports
// the paper's metrics as custom benchmark outputs.
func BenchmarkFig10Query1(b *testing.B) {
	r := benchRunner(b)
	var impr, missRed float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := r.Plan(bench.Query1, sql.Options{})
		if err != nil {
			b.Fatal(err)
		}
		refined, err := r.Refine(p)
		if err != nil {
			b.Fatal(err)
		}
		orig, err := r.Measure("orig", p)
		if err != nil {
			b.Fatal(err)
		}
		buf, err := r.Measure("buf", refined)
		if err != nil {
			b.Fatal(err)
		}
		impr = (1 - buf.ElapsedSec/orig.ElapsedSec) * 100
		missRed = (1 - float64(buf.Counters.L1IMisses)/float64(orig.Counters.L1IMisses)) * 100
	}
	b.ReportMetric(impr, "improvement-%")
	b.ReportMetric(missRed, "L1I-miss-reduction-%")
}

// --- Ablation benchmarks (DESIGN.md §7) ---

// newCPU builds a fresh simulated CPU over the runner's code model.
func newCPU(b *testing.B, cm *codemodel.Catalog) *cpusim.CPU {
	b.Helper()
	cpu, err := cpusim.New(cpusim.DefaultConfig(), cm.TextSegmentBytes())
	if err != nil {
		b.Fatal(err)
	}
	return cpu
}

// BenchmarkAblationCopyBuffer quantifies the tuple-copying buffer design
// the paper rejects in §5: same batching, plus a copy of every tuple.
func BenchmarkAblationCopyBuffer(b *testing.B) {
	r := benchRunner(b)
	li, err := r.DB.Table("lineitem")
	if err != nil {
		b.Fatal(err)
	}
	run := func(copying bool) float64 {
		scanMod := r.CM.MustModule("SeqScan")
		bufMod := r.CM.MustModule("Buffer")
		scan := exec.NewSeqScan(li, nil, scanMod)
		var buffered exec.Operator
		if copying {
			buffered = core.NewCopyBuffer(scan, 0, bufMod)
		} else {
			buffered = core.NewBuffer(scan, 0, bufMod)
		}
		cpu := newCPU(b, r.CM)
		placements := exec.PlaceCatalog(cpu, r.DB)
		if _, err := exec.Run(&exec.Context{Catalog: r.DB, CPU: cpu, Placements: placements}, buffered); err != nil {
			b.Fatal(err)
		}
		return cpu.ElapsedSeconds()
	}
	var overheadPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer := run(false)
		copying := run(true)
		overheadPct = (copying/pointer - 1) * 100
	}
	b.ReportMetric(overheadPct, "copy-overhead-%")
	if overheadPct <= 0 {
		b.Fatalf("copying buffer not slower (overhead %.1f%%)", overheadPct)
	}
}

// BenchmarkAblationBufferEverywhere compares group-level buffering (the
// paper's §1 choice) against a buffer above every operator: same i-cache
// benefit, strictly more buffer overhead.
func BenchmarkAblationBufferEverywhere(b *testing.B) {
	r := benchRunner(b)
	var refinedSec, everywhereSec float64
	var refinedBuffers, everywhereBuffers int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := r.Plan(bench.Query3, sql.Options{ForceJoin: sql.JoinHash})
		if err != nil {
			b.Fatal(err)
		}
		refined, err := r.Refine(p)
		if err != nil {
			b.Fatal(err)
		}
		everywhere := bufferEverywhere(p)
		refinedBuffers = plan.CountKind(refined, plan.KindBuffer)
		everywhereBuffers = plan.CountKind(everywhere, plan.KindBuffer)
		mr, err := r.Measure("refined", refined)
		if err != nil {
			b.Fatal(err)
		}
		me, err := r.Measure("everywhere", everywhere)
		if err != nil {
			b.Fatal(err)
		}
		refinedSec, everywhereSec = mr.ElapsedSec, me.ElapsedSec
	}
	b.ReportMetric((everywhereSec/refinedSec-1)*100, "overhead-vs-groups-%")
	b.ReportMetric(float64(everywhereBuffers-refinedBuffers), "extra-buffers")
}

// bufferEverywhere wraps every non-blocking pipeline edge in a buffer.
func bufferEverywhere(p *plan.Node) *plan.Node {
	cp := clone(p)
	var wrap func(n *plan.Node)
	wrap = func(n *plan.Node) {
		for i, c := range n.Children {
			wrap(c)
			if !c.Blocking() && c.Kind != plan.KindBuffer && c.Kind != plan.KindIndexLookup {
				n.Children[i] = plan.Buffer(c, 0)
			}
		}
	}
	wrap(cp)
	return cp
}

func clone(n *plan.Node) *plan.Node {
	cp := *n
	cp.Children = make([]*plan.Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = clone(c)
	}
	return &cp
}

// BenchmarkAblationNoThreshold disables the cardinality threshold: very
// selective queries then pay buffer overhead for nothing (§6, §7.3).
func BenchmarkAblationNoThreshold(b *testing.B) {
	r := benchRunner(b)
	const selective = `
		SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)), AVG(l_quantity), COUNT(*)
		FROM lineitem WHERE l_shipdate <= DATE '1992-02-15'`
	var withSec, withoutSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := r.Plan(selective, sql.Options{})
		if err != nil {
			b.Fatal(err)
		}
		withThreshold, _, err := plan.Refine(p, r.CM, plan.RefineOptions{CardinalityThreshold: r.Threshold})
		if err != nil {
			b.Fatal(err)
		}
		noThreshold, _, err := plan.Refine(p, r.CM, plan.RefineOptions{CardinalityThreshold: 0})
		if err != nil {
			b.Fatal(err)
		}
		mw, err := r.Measure("with", withThreshold)
		if err != nil {
			b.Fatal(err)
		}
		mo, err := r.Measure("without", noThreshold)
		if err != nil {
			b.Fatal(err)
		}
		withSec, withoutSec = mw.ElapsedSec, mo.ElapsedSec
	}
	b.ReportMetric((withoutSec/withSec-1)*100, "no-threshold-overhead-%")
}

// BenchmarkAblationHotEstimates compares the paper's conservative footprint
// estimator against an oracle that knows the bytes each group actually
// fetches. On TPC-H Q3 the conservative estimate buffers two groups whose
// hot sets in fact fit the cache; the oracle skips them.
func BenchmarkAblationHotEstimates(b *testing.B) {
	r := benchRunner(b)
	var conservativeSec, oracleSec float64
	var conservativeBuffers, oracleBuffers int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := r.Plan(bench.TPCHQ3, sql.Options{})
		if err != nil {
			b.Fatal(err)
		}
		conservative, _, err := plan.Refine(p, r.CM, plan.RefineOptions{CardinalityThreshold: r.Threshold})
		if err != nil {
			b.Fatal(err)
		}
		oracle, _, err := plan.Refine(p, r.CM, plan.RefineOptions{
			CardinalityThreshold: r.Threshold,
			UseHotFootprints:     true,
		})
		if err != nil {
			b.Fatal(err)
		}
		conservativeBuffers = plan.CountKind(conservative, plan.KindBuffer)
		oracleBuffers = plan.CountKind(oracle, plan.KindBuffer)
		mc, err := r.Measure("conservative", conservative)
		if err != nil {
			b.Fatal(err)
		}
		mo, err := r.Measure("oracle", oracle)
		if err != nil {
			b.Fatal(err)
		}
		conservativeSec, oracleSec = mc.ElapsedSec, mo.ElapsedSec
	}
	b.ReportMetric((conservativeSec/oracleSec-1)*100, "conservative-overhead-%")
	b.ReportMetric(float64(conservativeBuffers-oracleBuffers), "extra-buffers")
}

// BenchmarkAblationNaiveFootprint measures how much the naive static
// footprint estimator overestimates, which would over-buffer (§6.1).
func BenchmarkAblationNaiveFootprint(b *testing.B) {
	cm := codemodel.NewCatalog()
	scan := cm.MustModule("SeqScanPred")
	agg, err := cm.AggModule([]string{"count"})
	if err != nil {
		b.Fatal(err)
	}
	var overPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dedup := codemodel.CombinedFootprint(scan, agg)
		naive := codemodel.NaiveCombinedFootprint(scan, agg) +
			scan.StaticFootprintBytes() - scan.FootprintBytes() +
			agg.StaticFootprintBytes() - agg.FootprintBytes()
		overPct = (float64(naive)/float64(dedup) - 1) * 100
	}
	b.ReportMetric(overPct, "naive-overestimate-%")
}

// --- Real wall-clock benchmarks: batching in plain Go ---

// BenchmarkWallClockQuery1 measures actual (not simulated) execution of
// Query 1, original vs refined. Expect the buffered plan to be a few
// percent SLOWER here: the Go engine's hot code is a few kilobytes, far
// below any real L1I capacity, so there is no thrashing to remove and the
// buffer is pure overhead — a live rendition of the paper's Figure 9
// ("don't buffer what already fits"), and the reason the paper's headline
// experiments run on the simulated machine whose operator footprints match
// PostgreSQL's. See EXPERIMENTS.md.
func BenchmarkWallClockQuery1(b *testing.B) {
	r := benchRunner(b)
	p, err := r.Plan(bench.Query1, sql.Options{})
	if err != nil {
		b.Fatal(err)
	}
	refined, err := r.Refine(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("original", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := r.MeasureWall(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := r.MeasureWall(refined); err != nil {
				b.Fatal(err)
			}
		}
	})
}
