package bufferdb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// concurrentQueries is the mixed workload the concurrency tests drive: a
// streaming scan, grouped aggregation, and a join, so goroutines exercise
// every operator family plus the shared code model at once.
var concurrentQueries = []string{
	`SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'`,
	`SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`,
	`SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders
	 WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'`,
	`SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS rev
	 FROM lineitem WHERE l_quantity > 45`,
}

// resultKey renders a materialized result for equality comparison.
func resultKey(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", res.Columns)
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%v\n", r)
	}
	return b.String()
}

// TestConcurrentQueries runs ≥8 goroutines of mixed statements against one
// DB (including engine views and per-query parallelism) and checks every
// answer against the sequential baseline. Run under -race this is the
// thread-safety acceptance test.
func TestConcurrentQueries(t *testing.T) {
	db, err := OpenTPCH(0.002, Options{CardinalityThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	baseline := make([]string, len(concurrentQueries))
	for i, q := range concurrentQueries {
		res, err := db.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		baseline[i] = resultKey(res)
	}

	const goroutines = 12
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// A third of the goroutines run the vec engine view; another
			// third adds intra-query parallelism on top of inter-query
			// concurrency.
			view := db
			var opts []QueryOption
			switch g % 3 {
			case 1:
				view = db.WithEngine(EngineVec)
			case 2:
				opts = append(opts, WithParallelism(4))
			}
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(concurrentQueries)
				res, err := view.Query(context.Background(), concurrentQueries[qi], opts...)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d query %d: %w", g, qi, err)
					return
				}
				if got := resultKey(res); got != baseline[qi] {
					errc <- fmt.Errorf("goroutine %d query %d: result differs from sequential baseline", g, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentProfile runs simulated-CPU profiling from several goroutines
// at once: each Profile builds private CPUs and placements, so they must not
// interfere.
func TestConcurrentProfile(t *testing.T) {
	db, err := OpenTPCH(0.001, Options{CardinalityThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'`
	want, err := db.Profile(q)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prof, err := db.Profile(q)
			if err != nil {
				errc <- err
				return
			}
			// The simulation is deterministic: concurrent runs must report
			// exactly the sequential counters.
			if prof.Original.Uops != want.Original.Uops || prof.Buffered.Uops != want.Buffered.Uops {
				errc <- fmt.Errorf("concurrent profile diverged: uops %d/%d, want %d/%d",
					prof.Original.Uops, prof.Buffered.Uops, want.Original.Uops, want.Buffered.Uops)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentCalibration hammers the lazily-calibrated threshold from
// many goroutines; sync.Once must yield one value for all of them.
func TestConcurrentCalibration(t *testing.T) {
	db, err := OpenTPCH(0.001, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	got := make([]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := db.WithEngine(EngineVec).Threshold()
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = th
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d calibrated %v, goroutine 0 calibrated %v", g, got[g], got[0])
		}
	}
}

func TestQueryStreamRows(t *testing.T) {
	rows, err := testDB.QueryStream(context.Background(),
		`SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity > 45`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "l_orderkey" {
		t.Errorf("columns = %v", cols)
	}
	n := 0
	for rows.Next() {
		var key int64
		var price float64
		if err := rows.Scan(&key, &price); err != nil {
			t.Fatal(err)
		}
		if key <= 0 || price <= 0 {
			t.Fatalf("bad row: key=%d price=%v", key, price)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("stream produced no rows")
	}
	// Must match the materializing path.
	res, err := testDB.Query(context.Background(), `SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity > 45`)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Rows) {
		t.Errorf("streamed %d rows, Query returned %d", n, len(res.Rows))
	}
}

func TestRowsEarlyClose(t *testing.T) {
	rows, err := testDB.QueryStream(context.Background(), `SELECT l_orderkey FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("first Next failed: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Error("Next succeeded after Close")
	}
	if err := rows.Err(); err != nil {
		t.Errorf("Err after early Close = %v, want nil", err)
	}
	if err := rows.Scan(new(int64)); !errors.Is(err, ErrRowsClosed) {
		t.Errorf("Scan after Close = %v, want ErrRowsClosed", err)
	}
	if err := rows.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestQueryStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := testDB.QueryStream(ctx, `SELECT l_orderkey FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("first Next failed: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err after cancel = %v, want context.Canceled in its chain", err)
	}
}

func TestQueryStreamPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := testDB.QueryStream(ctx, `SELECT l_orderkey FROM lineitem`)
	if err != nil {
		// Open may already observe the canceled context; that is fine.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("QueryStream = %v, want context.Canceled in its chain", err)
		}
		return
	}
	defer rows.Close()
	if rows.Next() {
		t.Error("Next succeeded on a pre-canceled context")
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled in its chain", err)
	}
}

// TestParallelEquivalence checks the facade-level guarantee: any
// Parallelism value, on either engine, returns exactly the sequential rows.
func TestParallelEquivalence(t *testing.T) {
	q := `SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS rev
	      FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'`
	want, err := testDB.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	wantKey := resultKey(want)
	for _, engine := range []Engine{EngineVolcano, EngineVec, EnginePush} {
		view := testDB.WithEngine(engine)
		for _, workers := range []int{1, 2, 3, 4, 8} {
			res, err := view.Query(context.Background(), q, WithParallelism(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", engine, workers, err)
			}
			if resultKey(res) != wantKey {
				t.Errorf("%s workers=%d: result differs from sequential", engine, workers)
			}
		}
	}
}

func TestExplainShowsGather(t *testing.T) {
	_, refined, err := testDB.Explain(
		`SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'`,
		WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(refined, "Gather(workers=4)") {
		t.Errorf("refined plan does not show the gather:\n%s", refined)
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := testDB.Query(context.Background(), `SELECT 1 FROM ghost`); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("missing table error = %v, want ErrUnknownTable in its chain", err)
	}
	_, err := testDB.Query(context.Background(), `SELECT COUNT(*) FROM lineitem`, WithForceJoin("bogus"))
	if !errors.Is(err, ErrBadJoinMethod) {
		t.Errorf("bad join method error = %v, want ErrBadJoinMethod in its chain", err)
	}
	if _, err := testDB.WithEngine("turbo").Query(context.Background(), `SELECT COUNT(*) FROM lineitem`); !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("unknown engine error = %v, want ErrUnknownEngine in its chain", err)
	}
}
