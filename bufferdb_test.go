package bufferdb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

var testDB = func() *DB {
	db, err := OpenTPCH(0.002, Options{})
	if err != nil {
		panic(err)
	}
	return db
}()

func TestOpenAndCatalog(t *testing.T) {
	tables := testDB.Tables()
	if len(tables) != 8 {
		t.Errorf("tables = %v", tables)
	}
	n, err := testDB.RowCount("lineitem")
	if err != nil || n == 0 {
		t.Errorf("RowCount(lineitem) = %d, %v", n, err)
	}
	if _, err := testDB.RowCount("ghost"); err == nil {
		t.Error("RowCount of missing table succeeded")
	}
	for _, sf := range []float64{-1, 0, math.NaN(), math.Inf(1)} {
		_, err := OpenTPCH(sf, Options{})
		if err == nil {
			t.Errorf("scale factor %v accepted", sf)
		} else if !errors.Is(err, ErrBadScaleFactor) {
			t.Errorf("scale factor %v: error %v does not wrap ErrBadScaleFactor", sf, err)
		}
	}
}

func TestQuery(t *testing.T) {
	res, err := testDB.Query(context.Background(), `SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "n" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	n, ok := res.Rows[0][0].(int64)
	if !ok || n <= 0 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if _, err := testDB.Query(context.Background(), "SELEKT"); err == nil {
		t.Error("garbage SQL accepted")
	}
}

func TestWithEngine(t *testing.T) {
	q := `SELECT l_returnflag, COUNT(*) FROM lineitem
	      WHERE l_shipdate <= DATE '1995-06-17'
	      GROUP BY l_returnflag ORDER BY l_returnflag`
	volcano, err := testDB.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := testDB.WithEngine(EngineVec).Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(vec.Rows) != fmt.Sprint(volcano.Rows) {
		t.Errorf("engines disagree:\n vec:     %v\n volcano: %v", vec.Rows, volcano.Rows)
	}
	// WithEngine returns a handle; the receiver keeps its engine.
	if testDB.engine == EngineVec {
		t.Error("WithEngine mutated the receiver")
	}
	if _, err := testDB.WithEngine(Engine("gpu")).Query(context.Background(), q); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestNativeValueTypes(t *testing.T) {
	res, err := testDB.Query(context.Background(), `SELECT l_orderkey, l_quantity, l_returnflag, l_shipdate FROM lineitem LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if _, ok := row[0].(int64); !ok {
		t.Errorf("int column → %T", row[0])
	}
	if _, ok := row[1].(float64); !ok {
		t.Errorf("float column → %T", row[1])
	}
	if _, ok := row[2].(string); !ok {
		t.Errorf("string column → %T", row[2])
	}
	if _, ok := row[3].(time.Time); !ok {
		t.Errorf("date column → %T", row[3])
	}
}

func TestRefinementTransparency(t *testing.T) {
	const q = `SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'`
	auto, err := testDB.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := testDB.Query(context.Background(), q, WithoutRefinement())
	if err != nil {
		t.Fatal(err)
	}
	if auto.Rows[0][1] != raw.Rows[0][1] || auto.Rows[0][0] != raw.Rows[0][0] {
		t.Errorf("refinement changed result: %v vs %v", auto.Rows[0], raw.Rows[0])
	}
}

func TestExplainShowsBuffer(t *testing.T) {
	orig, refined, err := testDB.Explain(
		`SELECT SUM(l_extendedprice), AVG(l_quantity), COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(orig, "Buffer") {
		t.Errorf("original plan contains a buffer:\n%s", orig)
	}
	if !strings.Contains(refined, "Buffer") {
		t.Errorf("refined plan lacks a buffer:\n%s", refined)
	}
}

func TestThresholdCalibration(t *testing.T) {
	th, err := testDB.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 {
		t.Errorf("threshold = %v", th)
	}
	// Cached on second call.
	th2, err := testDB.Threshold()
	if err != nil || th2 != th {
		t.Errorf("threshold not cached: %v vs %v", th2, th)
	}
	// Explicit threshold respected.
	db, err := OpenTPCH(0.001, Options{CardinalityThreshold: 777})
	if err != nil {
		t.Fatal(err)
	}
	if th, _ := db.Threshold(); th != 777 {
		t.Errorf("explicit threshold = %v", th)
	}
}

func TestProfile(t *testing.T) {
	prof, err := testDB.Profile(
		`SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)), AVG(l_quantity), COUNT(*)
		 FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'`)
	if err != nil {
		t.Fatal(err)
	}
	if prof.BuffersInserted == 0 {
		t.Error("no buffers inserted for the Query 1 shape")
	}
	if prof.Buffered.L1IMisses >= prof.Original.L1IMisses {
		t.Errorf("L1I misses did not drop: %d vs %d", prof.Buffered.L1IMisses, prof.Original.L1IMisses)
	}
	if prof.ImprovementPct <= 0 {
		t.Errorf("improvement = %v", prof.ImprovementPct)
	}
	if prof.Original.CPI <= 0 || prof.Buffered.Uops == 0 {
		t.Errorf("stats incomplete: %+v", prof)
	}
}

// TestIndependentInstancesInParallel: a DB is single-threaded (like the
// paper's executor) but independent instances must not interfere.
func TestIndependentInstancesInParallel(t *testing.T) {
	const workers = 4
	results := make(chan string, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			db, err := OpenTPCH(0.001, Options{})
			if err != nil {
				errs <- err
				return
			}
			res, err := db.Query(context.Background(), `SELECT COUNT(*), SUM(l_quantity) FROM lineitem`)
			if err != nil {
				errs <- err
				return
			}
			results <- fmt.Sprint(res.Rows[0])
		}()
	}
	var first string
	for w := 0; w < workers; w++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case got := <-results:
			if first == "" {
				first = got
			} else if got != first {
				t.Errorf("instances disagree: %s vs %s", got, first)
			}
		}
	}
}

func TestForcedJoinMethods(t *testing.T) {
	const q = `SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey`
	var want any
	for _, m := range []string{"hash", "nestloop", "merge"} {
		res, err := testDB.Query(context.Background(), q, WithForceJoin(m))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if want == nil {
			want = res.Rows[0][0]
		} else if res.Rows[0][0] != want {
			t.Errorf("%s join result %v != %v", m, res.Rows[0][0], want)
		}
	}
	if _, err := testDB.Query(context.Background(), q, WithForceJoin("quantum")); err == nil {
		t.Error("bogus join method accepted")
	}
}
