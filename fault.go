package bufferdb

import "bufferdb/internal/faultinject"

// Fault injection is the testing half of the resource governor: a
// deterministic, seed-driven way to force errors, panics and latency at
// operator boundaries inside a running query, so teardown paths, typed
// error surfacing and leak-freedom can be exercised without touching the
// engine. Attach an injector to one statement with WithFaultInjector; with
// none attached the hooks are nil and cost nothing.

// Fault describes one injection rule; see the field docs on the underlying
// type for matching and scheduling semantics.
type Fault = faultinject.Fault

// FaultInjector holds a set of fault rules and deterministic scheduling
// state. Build one with NewFaultInjector; a nil injector is inert.
type FaultInjector = faultinject.Injector

// Fault kinds for Fault.Kind.
const (
	// FaultError makes the matched call return an error wrapping
	// ErrInjected.
	FaultError = faultinject.KindError
	// FaultPanic makes the matched call panic; the engine contains it and
	// surfaces a wrapped ErrQueryPanic whose chain still carries
	// ErrInjected.
	FaultPanic = faultinject.KindPanic
	// FaultLatency makes the matched call sleep for Fault.Latency.
	FaultLatency = faultinject.KindLatency
)

// ErrInjected is the sentinel all injected faults wrap; test with
// errors.Is to tell injected failures from organic ones.
var ErrInjected = faultinject.ErrInjected

// NewFaultInjector builds an injector over the given rules. The seed
// drives probabilistic rules; with Prob zero or one, schedules are exact
// and the seed is irrelevant.
func NewFaultInjector(seed uint64, faults ...Fault) *FaultInjector {
	return faultinject.New(seed, faults...)
}
