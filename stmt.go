package bufferdb

import (
	"context"
	"sync"

	"bufferdb/internal/plan"
)

// Stmt is a prepared statement: the statement is parsed, planned, refined
// and parallelized once, and the resulting physical plan is cached. Each
// execution clones the cached tree (compiled operators hold per-execution
// state, so plans cannot be shared between concurrent runs) — skipping
// parsing, optimization, refinement and the threshold calibration that ad
// hoc queries repeat on every call.
//
// A Stmt is safe for concurrent use.
type Stmt struct {
	db    *DB
	query string
	qo    QueryOptions

	mu     sync.Mutex
	cached *plan.Node
}

// Prepare plans the statement with the given options and caches the refined
// plan for repeated execution. Options fixed at Prepare time (engine,
// parallelism, buffer size, …) apply to every execution.
func (db *DB) Prepare(query string, opts ...QueryOption) (*Stmt, error) {
	qo := applyOptions(opts)
	if _, _, err := db.planEngine(qo); err != nil {
		return nil, err
	}
	p, err := db.plan(query, qo)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, query: query, qo: qo, cached: p}, nil
}

// Text returns the prepared statement's SQL.
func (s *Stmt) Text() string { return s.query }

// clonePlan hands out a private copy of the cached plan.
func (s *Stmt) clonePlan() *plan.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return plan.Clone(s.cached)
}

// Query executes the prepared statement and returns the materialized
// result.
func (s *Stmt) Query(ctx context.Context) (*Result, error) {
	rows, err := s.QueryStream(ctx)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		r := rows.row
		out := make([]any, len(r))
		for i, v := range r {
			out[i] = nativeValue(v)
		}
		res.Rows = append(res.Rows, out)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// QueryStream executes the prepared statement and returns a streaming
// cursor.
func (s *Stmt) QueryStream(ctx context.Context) (*Rows, error) {
	return s.db.execPlan(ctx, s.clonePlan(), s.qo)
}

// Explain renders the prepared (refined, parallelized) plan.
func (s *Stmt) Explain() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return plan.Explain(s.cached)
}
