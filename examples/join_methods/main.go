// Join methods: the paper's §7.5 experiment — the same two-table join run
// as a nested-loop join, a hash join, and a merge join, each original vs
// refined. Buffer placement differs per method (the paper's Figures 15–17):
// the nested-loop inner index lookup is never buffered (one row per
// rescan), the hash build is blocking so buffers go above the scans, and
// the sort feeding the merge join is never wrapped.
//
//	go run ./examples/join_methods
package main

import (
	"context"
	"fmt"
	"log"

	"bufferdb"
)

const query3 = `
SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount)
FROM lineitem, orders
WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'`

func main() {
	db, err := bufferdb.OpenTPCH(0.01, bufferdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, method := range []string{"nestloop", "hash", "merge"} {
		opts := bufferdb.WithForceJoin(method)
		_, refined, err := db.Explain(query3, opts)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := db.Profile(query3, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s join ===\n", method)
		fmt.Print(refined)
		fmt.Printf("buffers inserted: %d\n", prof.BuffersInserted)
		fmt.Printf("L1I misses: %d → %d, elapsed %.4fs → %.4fs (%.1f%% better)\n\n",
			prof.Original.L1IMisses, prof.Buffered.L1IMisses,
			prof.Original.ElapsedSec, prof.Buffered.ElapsedSec, prof.ImprovementPct)
	}

	// All three compute the same answer, buffered or not.
	res, err := db.Query(context.Background(), query3, bufferdb.WithForceJoin("hash"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", res.Rows[0])
}
