// Quickstart: open a TPC-H database, run a query, read the results.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"bufferdb"
)

func main() {
	// Generate a small memory-resident TPC-H instance (scale factor 0.01
	// ≈ 60 k lineitem rows). Plan refinement — the paper's buffering pass
	// — is on by default and is transparent: results never change.
	db, err := bufferdb.OpenTPCH(0.01, bufferdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range db.Tables() {
		n, _ := db.RowCount(t)
		fmt.Printf("%-10s %8d rows\n", t, n)
	}

	res, err := db.Query(context.Background(), `
		SELECT l_returnflag, l_linestatus, COUNT(*) AS orders, AVG(l_quantity) AS avg_qty
		FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-02'
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		fmt.Println(row)
	}
}
