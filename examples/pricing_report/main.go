// Pricing report: the paper's Query 1 (its Figure 3), the workload that
// motivates buffering — a scan and an aggregation whose combined
// instruction footprint exceeds the L1 instruction cache, so the
// conventional demand-pull plan thrashes. This example shows the refined
// plan the paper's algorithm produces and the simulated hardware-counter
// comparison (the paper's Figure 10).
//
//	go run ./examples/pricing_report
package main

import (
	"context"
	"fmt"
	"log"

	"bufferdb"
)

const query1 = `
SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'`

func main() {
	db, err := bufferdb.OpenTPCH(0.01, bufferdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The answer itself.
	res, err := db.Query(context.Background(), query1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", res.Columns, res.Rows[0])

	// What the refinement pass did to the plan.
	orig, refined, err := db.Explain(query1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconventional plan:")
	fmt.Print(orig)
	fmt.Println("refined plan (note the buffer between scan and aggregation):")
	fmt.Print(refined)

	// Why it did it: the simulated hardware counters.
	prof, err := db.Profile(query1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %12s %12s\n", "", "original", "buffered")
	fmt.Printf("%-12s %12.4f %12.4f  (simulated seconds)\n", "elapsed", prof.Original.ElapsedSec, prof.Buffered.ElapsedSec)
	fmt.Printf("%-12s %12d %12d\n", "L1I misses", prof.Original.L1IMisses, prof.Buffered.L1IMisses)
	fmt.Printf("%-12s %12d %12d\n", "ITLB misses", prof.Original.ITLBMisses, prof.Buffered.ITLBMisses)
	fmt.Printf("%-12s %12d %12d\n", "mispredicts", prof.Original.Mispredicts, prof.Buffered.Mispredicts)
	fmt.Printf("%-12s %12.3f %12.3f\n", "CPI", prof.Original.CPI, prof.Buffered.CPI)
	fmt.Printf("\noverall improvement: %.1f%% (paper reports ~12%% on real hardware)\n", prof.ImprovementPct)
}
