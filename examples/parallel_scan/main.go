// Parallel scan: intra-query parallelism with partitioned scans and a
// gather operator, plus the context-aware streaming API.
//
//	go run ./examples/parallel_scan
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bufferdb"
)

func main() {
	// Parallelism fans eligible scan pipelines out over partition workers;
	// every worker scans a contiguous slice of the heap and the gather
	// merges slices in partition order, so results are byte-identical to
	// the sequential plan.
	db, err := bufferdb.OpenTPCH(0.02, bufferdb.Options{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}

	query := `
		SELECT l_orderkey, l_extendedprice * (1 - l_discount) * (1 + l_tax) AS charge
		FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-02'`

	// EXPLAIN shows the gather sitting above the scan pipeline — and any
	// refinement-inserted buffers below it, one per worker.
	_, refined, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("refined, parallelized plan:")
	fmt.Println(refined)

	// Stream the result with QueryStream. The context cancels the query:
	// here we give it a generous deadline; pass a short one to see the
	// stream end early with an error wrapping context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	rows, err := db.QueryStream(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()

	var total float64
	n := 0
	for rows.Next() {
		var key int64
		var charge float64
		if err := rows.Scan(&key, &charge); err != nil {
			log.Fatal(err)
		}
		total += charge
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d rows, total charge %.2f\n", n, total)

	// Worker count is also a per-query knob; any value returns the same
	// rows in the same order.
	for _, workers := range []int{1, 2, 8} {
		res, err := db.Query(ctx, query, bufferdb.WithParallelism(workers))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workers=%d: %d rows\n", workers, len(res.Rows))
	}
}
