// Buffer tuning: the paper's §7.3–§7.4 parameter studies through the
// public API — how the gain depends on predicate selectivity (output
// cardinality) and on the buffer size, and why a moderate default (1024)
// is enough.
//
//	go run ./examples/buffer_tuning
package main

import (
	"fmt"
	"log"

	"bufferdb"
)

func main() {
	db, err := bufferdb.OpenTPCH(0.01, bufferdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	threshold, err := db.Threshold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated cardinality threshold: %.0f rows\n", threshold)
	fmt.Println("(buffers are only inserted above groups producing more rows than this)")

	// Selectivity sweep: tighter shipdate cutoffs make the scan's output
	// smaller, shrinking — then erasing — buffering's benefit (§7.3).
	fmt.Printf("\n%-14s %14s %14s %12s\n", "cutoff", "original (s)", "buffered (s)", "gain")
	for _, cutoff := range []string{"1992-06-01", "1993-06-01", "1995-06-17", "1998-09-02"} {
		q := fmt.Sprintf(`
			SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
			       AVG(l_quantity), COUNT(*)
			FROM lineitem WHERE l_shipdate <= DATE '%s'`, cutoff)
		prof, err := db.Profile(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14.4f %14.4f %11.1f%%\n",
			cutoff, prof.Original.ElapsedSec, prof.Buffered.ElapsedSec, prof.ImprovementPct)
	}

	// Buffer size sweep (§7.4): misses drop ∝ 1/size, so past a moderate
	// size the curve is flat — larger arrays only add data-cache pressure.
	const q1 = `
		SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
		       AVG(l_quantity), COUNT(*)
		FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'`
	fmt.Printf("\n%-12s %14s %12s\n", "buffer size", "buffered (s)", "gain")
	for _, size := range []int{1, 8, 64, 256, 1024, 8192, 65536} {
		prof, err := db.Profile(q1, bufferdb.WithBufferSize(size))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %14.4f %11.1f%%\n", size, prof.Buffered.ElapsedSec, prof.ImprovementPct)
	}
}
