package bufferdb

import (
	"errors"

	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
)

// Sentinel errors returned (wrapped) by the facade. Test with errors.Is;
// the dynamic error carries the offending name alongside.
var (
	// ErrUnknownTable is wrapped by catalog lookups for a missing table
	// (RowCount, or a query referencing one).
	ErrUnknownTable = storage.ErrUnknownTable
	// ErrUnknownEngine is wrapped when a WithEngine view names an engine
	// that does not exist.
	ErrUnknownEngine = errors.New("unknown engine")
	// ErrBadJoinMethod is wrapped when QueryOptions.ForceJoin is not one of
	// "", "hash", "nestloop", "merge". It is detected at plan time, before
	// any execution starts.
	ErrBadJoinMethod = sql.ErrBadJoinMethod
	// ErrRowsClosed is returned by Rows.Scan after the cursor was closed.
	ErrRowsClosed = errors.New("rows are closed")
)
