package bufferdb

import (
	"errors"

	"bufferdb/internal/exec"
	"bufferdb/internal/pager"
	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

// Sentinel errors returned (wrapped) by the facade. Test with errors.Is;
// the dynamic error carries the offending name alongside.
var (
	// ErrUnknownTable is wrapped by catalog lookups for a missing table
	// (RowCount, or a query referencing one).
	ErrUnknownTable = storage.ErrUnknownTable
	// ErrUnknownEngine is wrapped when a WithEngine view names an engine
	// that does not exist.
	ErrUnknownEngine = errors.New("unknown engine")
	// ErrBadJoinMethod is wrapped when QueryOptions.ForceJoin is not one of
	// "", "hash", "nestloop", "merge". It is detected at plan time, before
	// any execution starts.
	ErrBadJoinMethod = sql.ErrBadJoinMethod
	// ErrBadScaleFactor is wrapped when OpenTPCH is given a scale factor
	// that cannot generate a catalog: zero, negative, NaN or infinite.
	ErrBadScaleFactor = tpch.ErrBadScaleFactor
	// ErrRowsClosed is returned by Rows.Scan after the cursor was closed.
	ErrRowsClosed = errors.New("rows are closed")
	// ErrReadOnly is wrapped when an INSERT targets a memory-resident table.
	// Only tables backed by the persistent storage tier (Options.DataDir)
	// accept writes — the in-memory catalog is built once and immutable.
	ErrReadOnly = errors.New("table is read-only")
	// ErrCorruptData is wrapped when the persistent storage tier finds a
	// torn page, a bad checksum, or an undecodable record.
	ErrCorruptData = pager.ErrCorrupt

	// ErrMemoryBudgetExceeded is wrapped when a query's tracked allocations
	// overrun its WithMemoryBudget value or the database's MemoryLimit.
	ErrMemoryBudgetExceeded = exec.ErrMemoryBudgetExceeded
	// ErrDeadlineExceeded is wrapped when a query's WithTimeout/WithDeadline
	// clock (or the caller's context deadline) expires mid-execution. The
	// chain also carries context.DeadlineExceeded.
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	// ErrServerBusy is wrapped when admission control sheds a query: the
	// wait queue is full, or no execution slot freed within the wait
	// timeout.
	ErrServerBusy = errors.New("server busy")
	// ErrQueryPanic is wrapped when an operator panics during execution.
	// The panic is contained — the plan tears down and the process keeps
	// serving — and the stack is in the error text.
	ErrQueryPanic = exec.ErrOperatorPanic
	// ErrShardUnavailable is wrapped when a distributed query fails because
	// a shard could not be reached or died mid-stream. The coordinator
	// cancels the sibling shard streams before surfacing it.
	ErrShardUnavailable = errors.New("shard unavailable")
)
