package bufferdb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
)

// Rows is a streaming query result cursor, in the style of database/sql:
//
//	rows, err := db.QueryStream(ctx, query)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var key int64
//	    var charge float64
//	    if err := rows.Scan(&key, &charge); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows pulls tuples from the executing plan on demand — nothing is
// materialized ahead of the consumer except what blocking operators (sort,
// hash build) hold by nature. A Rows is not safe for concurrent use; run
// concurrent queries on separate cursors.
type Rows struct {
	ectx   *exec.Context
	op     exec.Operator
	cols   []string
	schema storage.Schema

	row    storage.Row
	err    error
	closed bool

	// closeErr retains an operator-teardown error from an internal close
	// (end-of-stream in Next) so the consumer's first explicit Close still
	// surfaces it; the second Close returns nil.
	closeErr error

	// Governor state settled exactly once in close(): the per-query memory
	// tracker, the deadline cancel func, the admission controller holding
	// this query's slot, and the owning DB (for the tracked-bytes gauge).
	mem    *exec.MemTracker
	cancel context.CancelFunc
	adm    *admission
	db     *DB

	// releases unpin reuse-cache entries this cursor adopted; they run in
	// close() so eviction can never free a build mid-probe.
	releases []func()

	// cp is the analyzed compilation (operator→node map) when the
	// statement ran with WithStats; Stats reads it back.
	cp *plan.CompiledPlan

	// engineLabel, started and emitted feed the process-wide metrics
	// registry when the cursor finishes.
	engineLabel string
	started     time.Time
	emitted     uint64
	metricsDone bool
}

// QueryStream plans (with refinement and parallelization per the options),
// starts executing, and returns a streaming cursor. The context cancels the
// query: once ctx is done, Next stops and Err reports an error wrapping the
// context's.
func (db *DB) QueryStream(ctx context.Context, query string, opts ...QueryOption) (*Rows, error) {
	return db.queryStream(ctx, query, applyOptions(opts))
}

// queryStream is the shared ad-hoc execution path: plan, then run. Writes
// (INSERT) divert to the storage tier before planning — they have no
// operator pipeline.
func (db *DB) queryStream(ctx context.Context, query string, qo QueryOptions) (*Rows, error) {
	if sql.IsInsert(query) {
		return db.execInsert(ctx, query, qo)
	}
	p, err := db.plan(query, qo)
	if err != nil {
		return nil, err
	}
	return db.execPlan(ctx, p, qo)
}

// execPlan compiles an already-planned statement and starts executing it
// under the resource governor: the query passes admission control, runs
// under its deadline and memory budget, and contains operator panics.
// Prepared statements enter here with a cloned cached plan.
func (db *DB) execPlan(ctx context.Context, p *plan.Node, qo QueryOptions) (*Rows, error) {
	label, engine, err := db.planEngine(qo)
	if err != nil {
		return nil, err
	}
	metricQueries(label).Inc()

	// The deadline clock starts before admission: a query stuck in the
	// wait queue is still burning its caller's patience.
	cancel := context.CancelFunc(func() {})
	if qo.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, qo.Timeout)
	} else if !qo.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, qo.Deadline)
	}

	adm := db.adm
	if qo.NoAdmission {
		adm = nil
	}
	if err := adm.acquire(ctx, qo.AdmissionWait); err != nil {
		cancel()
		classifyError(label, err)
		metricErrors(label).Inc()
		return nil, err
	}
	if adm != nil {
		metricAdmitted().Add(1)
	}
	// From here on, any failure must return the slot, stop the clock,
	// release tracked memory and unpin adopted cache entries before
	// surfacing.
	var reuseReleases []func()
	bail := func(mem *exec.MemTracker, err error) (*Rows, error) {
		for _, rel := range reuseReleases {
			rel()
		}
		mem.ReleaseAll()
		if adm != nil {
			adm.release()
			metricAdmitted().Add(-1)
		}
		cancel()
		classifyError(label, err)
		metricErrors(label).Inc()
		return nil, err
	}

	// Semantic reuse: splice cached intermediates over matching subtrees
	// (pinning them for the cursor's lifetime) and attach publish hooks to
	// the rest. The plan is this execution's private copy — ad-hoc plans
	// are fresh, prepared statements clone per run — so mutation is safe.
	if db.reuseCache != nil && !qo.NoReuse {
		p, reuseReleases = plan.ApplyReuse(p, db.reuseCache)
	}

	var op exec.Operator
	var cp *plan.CompiledPlan
	if qo.CollectStats {
		cp, err = plan.CompileAnalyzed(p, nil, engine)
		if err == nil {
			op = cp.Root
		}
	} else {
		op, err = plan.Compile(p, nil, engine)
	}
	if err != nil {
		return bail(nil, err)
	}

	// The query tracker is a child of the process tracker; with neither a
	// per-query budget nor a database limit it stays nil and every
	// operator hook is a single nil check.
	var mem *exec.MemTracker
	if qo.MemoryBudget > 0 || db.mem != nil {
		mem = exec.NewMemTracker("query", qo.MemoryBudget, db.mem)
	}
	ectx := &exec.Context{Catalog: db.cat, Ctx: ctx, Mem: mem, Fault: qo.FaultInjector}
	if qo.CollectStats {
		ectx.Stats = exec.NewStatsCollector()
	}
	if err := exec.CallOpen(ectx, op); err != nil {
		// Tear down whatever Open built before failing; a partially opened
		// tree may already hold goroutines and tracked memory.
		_ = exec.CallClose(ectx, op)
		return bail(mem, err)
	}
	schema := p.Schema()
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Name
	}
	return &Rows{
		ectx:        ectx,
		op:          op,
		cols:        cols,
		schema:      schema,
		mem:         mem,
		cancel:      cancel,
		adm:         adm,
		db:          db,
		releases:    reuseReleases,
		cp:          cp,
		engineLabel: string(label),
		started:     time.Now(),
	}, nil
}

// classifyError feeds the failure-class counters from a query error.
func classifyError(e Engine, err error) {
	switch {
	case errors.Is(err, ErrServerBusy):
		metricRejected(e).Inc()
	case errors.Is(err, exec.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		metricTimeout(e).Inc()
	case errors.Is(err, exec.ErrMemoryBudgetExceeded):
		metricOOM(e).Inc()
	case errors.Is(err, exec.ErrOperatorPanic):
		metricPanic(e).Inc()
	}
}

// Columns names the result attributes, in Scan order. The returned slice is
// cached and shared across calls; treat it as read-only.
func (r *Rows) Columns() []string { return r.cols }

// Stats returns the per-operator runtime counters of this execution, or nil
// unless the statement ran with WithStats. The tree is a snapshot; read it
// after draining (or closing) the cursor for final numbers.
func (r *Rows) Stats() *OpStat {
	if r.cp == nil || r.ectx.Stats == nil {
		return nil
	}
	return publicStat(plan.BuildReport(r.cp, r.ectx.Stats))
}

// Next advances to the next row. It returns false at end of stream, on
// error, on cancellation, or after Close; consult Err afterwards to tell
// completion from failure.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if err := r.ectx.Canceled(); err != nil {
		r.fail(err)
		return false
	}
	row, err := exec.CallNext(r.ectx, r.op)
	if err != nil {
		r.fail(err)
		return false
	}
	if row == nil {
		r.row = nil
		// End of stream: tear down now, deferring any teardown error to
		// the consumer's explicit Close.
		r.closeErr = r.close()
		return false
	}
	r.row = row
	r.emitted++
	return true
}

// Scan copies the current row into dest, one pointer per column. Supported
// destinations: *int64, *float64, *string, *bool, *time.Time, and *any
// (which receives the same native value Result rows carry, including nil
// for SQL NULL). The typed pointers reject NULL.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil {
		if r.closed {
			return fmt.Errorf("bufferdb: Scan: %w", ErrRowsClosed)
		}
		return fmt.Errorf("bufferdb: Scan called without a successful Next")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("bufferdb: Scan got %d destinations for %d columns", len(dest), len(r.row))
	}
	for i, d := range dest {
		if err := scanValue(d, r.row[i], i, r.cols[i]); err != nil {
			return err
		}
	}
	return nil
}

// scanValue assigns one column value to one destination pointer. Errors
// name the column by 0-based index and name.
func scanValue(dest any, v storage.Value, idx int, col string) error {
	if p, ok := dest.(*any); ok {
		*p = nativeValue(v)
		return nil
	}
	if v.Kind == storage.TypeNull {
		return fmt.Errorf("bufferdb: Scan: column %d (%s) is NULL; use *any to receive NULLs", idx, col)
	}
	switch p := dest.(type) {
	case *int64:
		if v.Kind != storage.TypeInt64 {
			return scanMismatch(idx, col, v, "int64")
		}
		*p = v.I
	case *float64:
		switch v.Kind {
		case storage.TypeFloat64:
			*p = v.F
		case storage.TypeInt64:
			*p = float64(v.I)
		default:
			return scanMismatch(idx, col, v, "float64")
		}
	case *string:
		*p = v.String()
	case *bool:
		if v.Kind != storage.TypeBool {
			return scanMismatch(idx, col, v, "bool")
		}
		*p = v.Bool()
	case *time.Time:
		if v.Kind != storage.TypeDate {
			return scanMismatch(idx, col, v, "time.Time")
		}
		*p = time.Unix(v.I*86400, 0).UTC()
	default:
		return fmt.Errorf("bufferdb: Scan: unsupported destination type %T for column %d (%s)", dest, idx, col)
	}
	return nil
}

func scanMismatch(idx int, col string, v storage.Value, want string) error {
	return fmt.Errorf("bufferdb: Scan: column %d (%s) has kind %v, destination wants %s", idx, col, v.Kind, want)
}

// Err returns the error, if any, that ended iteration. A query that ran to
// completion (or was closed early by the consumer) reports nil; a canceled
// query reports an error wrapping the context's.
func (r *Rows) Err() error { return r.err }

// Close releases the executing plan. It is idempotent and safe after
// exhaustion; abandoning a stream mid-way is exactly what it is for. The
// first Close reports any operator-teardown error — including one deferred
// from the internal end-of-stream close — later calls return nil.
func (r *Rows) Close() error {
	r.row = nil
	if r.closed {
		err := r.closeErr
		r.closeErr = nil
		return err
	}
	return r.close()
}

// fail records err and tears the plan down.
func (r *Rows) fail(err error) {
	r.err = err
	r.row = nil
	e := Engine(r.engineLabel)
	classifyError(e, err)
	metricErrors(e).Inc()
	_ = r.close()
}

// close shuts the operator tree down once, returns the query's governor
// resources (tracked memory, deadline timer, admission slot), and settles
// the cursor's metrics.
func (r *Rows) close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := exec.CallClose(r.ectx, r.op)
	// Adopted reuse-cache entries stay pinned until the tree is down: only
	// now can eviction release their reservations.
	for _, rel := range r.releases {
		rel()
	}
	r.releases = nil
	// Operators release their charges in Close; ReleaseAll only mops up
	// after a teardown path that lost track (e.g. a panicking Close).
	r.mem.ReleaseAll()
	if r.cancel != nil {
		r.cancel()
	}
	if r.adm != nil {
		r.adm.release()
		metricAdmitted().Add(-1)
		r.adm = nil
	}
	if r.db != nil && r.db.mem != nil {
		metricTrackedBytes().Set(float64(r.db.mem.Bytes()))
	}
	if !r.metricsDone {
		r.metricsDone = true
		e := Engine(r.engineLabel)
		metricRows(e).Add(r.emitted)
		metricLatency(e).Observe(time.Since(r.started).Seconds())
	}
	return err
}
